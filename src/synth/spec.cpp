#include "synth/spec.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace aspmt::synth {

TaskId Specification::add_task(std::string name) {
  const TaskId id = static_cast<TaskId>(tasks_.size());
  tasks_.push_back(Task{std::move(name)});
  mappings_by_task_.emplace_back();
  return id;
}

MessageId Specification::add_message(std::string name, TaskId src, TaskId dst,
                                     std::int64_t payload) {
  assert(src < tasks_.size() && dst < tasks_.size() && src != dst);
  const MessageId id = static_cast<MessageId>(messages_.size());
  messages_.push_back(Message{std::move(name), src, dst, payload});
  return id;
}

ResourceId Specification::add_resource(std::string name, ResourceKind kind,
                                       std::int64_t cost, std::uint32_t capacity) {
  const ResourceId id = static_cast<ResourceId>(resources_.size());
  resources_.push_back(Resource{std::move(name), kind, cost, capacity});
  links_from_.emplace_back();
  return id;
}

LinkId Specification::add_link(ResourceId from, ResourceId to,
                               std::int64_t hop_delay, std::int64_t hop_energy) {
  assert(from < resources_.size() && to < resources_.size() && from != to);
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{from, to, hop_delay, hop_energy});
  links_from_[from].push_back(id);
  return id;
}

std::size_t Specification::add_mapping(TaskId task, ResourceId resource,
                                       std::int64_t wcet, std::int64_t energy) {
  assert(task < tasks_.size() && resource < resources_.size());
  assert(wcet >= 1);
  const std::size_t idx = mappings_.size();
  mappings_.push_back(MappingOption{task, resource, wcet, energy});
  mappings_by_task_[task].push_back(idx);
  return idx;
}

std::vector<std::vector<std::uint32_t>> Specification::hop_distances() const {
  const std::size_t n = resources_.size();
  std::vector<std::vector<std::uint32_t>> dist(
      n, std::vector<std::uint32_t>(n, kUnreachable));
  for (ResourceId s = 0; s < n; ++s) {
    dist[s][s] = 0;
    std::deque<ResourceId> queue{s};
    while (!queue.empty()) {
      const ResourceId u = queue.front();
      queue.pop_front();
      for (const LinkId l : links_from_[u]) {
        const ResourceId v = links_[l].to;
        if (dist[s][v] == kUnreachable) {
          dist[s][v] = dist[s][u] + 1;
          queue.push_back(v);
        }
      }
    }
  }
  return dist;
}

std::uint32_t Specification::effective_max_hops() const {
  if (max_hops != 0) return max_hops;
  const auto dist = hop_distances();
  std::uint32_t needed = 0;
  for (const Message& m : messages_) {
    for (const std::size_t so : mappings_by_task_[m.src]) {
      for (const std::size_t do_ : mappings_by_task_[m.dst]) {
        const std::uint32_t d =
            dist[mappings_[so].resource][mappings_[do_].resource];
        if (d != kUnreachable) needed = std::max(needed, d);
      }
    }
  }
  return needed;
}

std::size_t Specification::add_scenario(std::string name) {
  scenarios_.push_back(Scenario{std::move(name), {}});
  return scenarios_.size() - 1;
}

void Specification::set_scenario_factor(std::size_t s, ResourceId r,
                                        std::int64_t factor) {
  assert(s < scenarios_.size());
  auto& f = scenarios_[s].factor;
  if (f.size() <= r) f.resize(r + 1, 1);
  f[r] = factor;
}

std::size_t Specification::scenario_index(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < scenarios_.size(); ++i) {
    if (scenarios_[i].name == name) return i;
  }
  return npos;
}

std::vector<ObjectiveExpr> Specification::default_objectives() {
  std::vector<ObjectiveExpr> axes(3);
  axes[0].metric = "latency";
  axes[1].metric = "energy";
  axes[2].metric = "cost";
  return axes;
}

std::vector<ObjectiveExpr> Specification::effective_objectives() const {
  return objectives_.empty() ? default_objectives() : objectives_;
}

std::string Specification::validate() const {
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    if (mappings_by_task_[t].empty()) {
      return "task '" + tasks_[t].name + "' has no mapping option";
    }
  }
  const auto dist = hop_distances();
  const std::uint32_t hops = effective_max_hops();
  for (const Message& m : messages_) {
    if (m.src >= tasks_.size() || m.dst >= tasks_.size()) {
      return "message '" + m.name + "' references an unknown task";
    }
    if (m.payload < 0) return "message '" + m.name + "' has negative payload";
    bool routable = false;
    for (const std::size_t so : mappings_by_task_[m.src]) {
      for (const std::size_t do_ : mappings_by_task_[m.dst]) {
        const std::uint32_t d =
            dist[mappings_[so].resource][mappings_[do_].resource];
        if (d != kUnreachable && d <= hops) {
          routable = true;
          break;
        }
      }
      if (routable) break;
    }
    if (!routable) {
      return "message '" + m.name + "' admits no routable binding pair";
    }
  }
  for (const MappingOption& o : mappings_) {
    if (o.wcet < 1) return "mapping with non-positive WCET";
    if (o.energy < 0) return "mapping with negative energy";
  }
  for (const Resource& r : resources_) {
    if (r.cost < 0) return "resource '" + r.name + "' has negative cost";
  }
  for (const Link& l : links_) {
    if (l.hop_delay < 0 || l.hop_energy < 0) return "link with negative weights";
  }
  for (std::size_t s = 0; s < scenarios_.size(); ++s) {
    const Scenario& sc = scenarios_[s];
    if (sc.name.empty()) return "scenario with empty name";
    for (std::size_t t = 0; t < s; ++t) {
      if (scenarios_[t].name == sc.name) {
        return "duplicate scenario '" + sc.name + "'";
      }
    }
    if (sc.factor.size() > resources_.size()) {
      return "scenario '" + sc.name + "' names an unknown resource";
    }
    for (const std::int64_t f : sc.factor) {
      if (f < 1) return "scenario '" + sc.name + "' has a factor below 1";
    }
  }
  for (const ObjectiveExpr& expr : objectives_) {
    const std::string err = validate_objective_expr(*this, expr);
    if (!err.empty()) return "objective " + to_string(expr) + ": " + err;
  }
  return {};
}

}  // namespace aspmt::synth
