#include "synth/objective_expr.hpp"

#include <algorithm>
#include <cctype>
#include <limits>
#include <sstream>

#include "synth/spec.hpp"

namespace aspmt::synth {

namespace {

/// Saturation ceiling for static caps: leaves ample headroom for weighted
/// aggregation and lex packing arithmetic in __int128 before clamping.
constexpr std::int64_t kCapMax =
    std::numeric_limits<std::int64_t>::max() / 4;

std::int64_t saturate(__int128 v) {
  if (v > kCapMax) return kCapMax;
  if (v < 0) return 0;
  return static_cast<std::int64_t>(v);
}

std::int64_t clamp_value(__int128 v) {
  constexpr __int128 lim = std::numeric_limits<std::int64_t>::max();
  if (v > lim) return std::numeric_limits<std::int64_t>::max();
  if (v < 0) return 0;
  return static_cast<std::int64_t>(v);
}

const char* kind_word(ObjectiveExpr::Kind k) {
  switch (k) {
    case ObjectiveExpr::Kind::Lex: return "lex";
    case ObjectiveExpr::Kind::MinMax: return "minmax";
    case ObjectiveExpr::Kind::Worst: return "worst";
    case ObjectiveExpr::Kind::Weighted: return "weighted";
    case ObjectiveExpr::Kind::Metric: break;
  }
  return "";
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool at(char c) const {
    return pos < text.size() && text[pos] == c;
  }
  bool eat(char c) {
    if (!at(c)) return false;
    ++pos;
    return true;
  }

  std::string word() {
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '_')) {
      ++pos;
    }
    return std::string(text.substr(start, pos - start));
  }

  bool integer(std::int64_t& out) {
    const std::size_t start = pos;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
    if (pos == start) return false;
    out = 0;
    for (std::size_t i = start; i < pos; ++i) {
      if (out > kCapMax / 10) return false;  // absurd weight
      out = out * 10 + (text[i] - '0');
    }
    return true;
  }

  bool fail(std::string why) {
    if (error.empty()) error = std::move(why);
    return false;
  }

  bool parse_expr(ObjectiveExpr& out) {
    const std::string head = word();
    if (head.empty()) return fail("expected a metric or combinator");
    if (at('(')) {
      ++pos;
      out.children.clear();
      if (head == "lex") out.kind = ObjectiveExpr::Kind::Lex;
      else if (head == "minmax") out.kind = ObjectiveExpr::Kind::MinMax;
      else if (head == "worst") out.kind = ObjectiveExpr::Kind::Worst;
      else if (head == "weighted") out.kind = ObjectiveExpr::Kind::Weighted;
      else return fail("unknown combinator '" + head + "'");
      const bool weighted = out.kind == ObjectiveExpr::Kind::Weighted;
      const char sep = weighted ? '+' : ',';
      do {
        ObjectiveExpr child;
        if (weighted) {
          std::int64_t w = 0;
          if (!integer(w) || !eat('*')) {
            return fail("weighted term must be <int>*<expr>");
          }
          out.weights.push_back(w);
        }
        if (!parse_expr(child)) return false;
        out.children.push_back(std::move(child));
      } while (eat(sep));
      if (!eat(')')) return fail("expected '" + std::string(1, sep) + "' or ')'");
      return true;
    }
    out.kind = ObjectiveExpr::Kind::Metric;
    out.metric = head;
    if (eat('@')) {
      out.scenario = word();
      if (out.scenario.empty()) return fail("expected a scenario name after '@'");
    }
    return true;
  }
};

std::string validate_node(const Specification& spec, const ObjectiveExpr& expr,
                          std::size_t depth, std::size_t& nodes) {
  if (depth > 8) return "expression nests too deeply";
  if (++nodes > 64) return "expression has too many nodes";
  switch (expr.kind) {
    case ObjectiveExpr::Kind::Metric: {
      if (expr.metric != "latency" && expr.metric != "energy" &&
          expr.metric != "cost") {
        return "unknown metric '" + expr.metric + "'";
      }
      if (!expr.scenario.empty()) {
        if (expr.metric != "energy") {
          return "scenario qualifier is only defined for energy";
        }
        if (spec.scenario_index(expr.scenario) == Specification::npos) {
          return "unknown scenario '" + expr.scenario + "'";
        }
      }
      if (!expr.children.empty() || !expr.weights.empty()) {
        return "metric leaf with children";
      }
      return {};
    }
    case ObjectiveExpr::Kind::Weighted: {
      if (expr.children.empty()) return "weighted needs at least one term";
      if (expr.weights.size() != expr.children.size()) {
        return "weighted arity mismatch";
      }
      for (const std::int64_t w : expr.weights) {
        if (w < 1) return "weights must be positive integers";
      }
      break;
    }
    case ObjectiveExpr::Kind::Lex:
    case ObjectiveExpr::Kind::MinMax:
    case ObjectiveExpr::Kind::Worst: {
      if (expr.children.size() < 2) {
        return std::string(kind_word(expr.kind)) + " needs at least two children";
      }
      if (!expr.weights.empty()) return "unexpected weights";
      break;
    }
  }
  for (const ObjectiveExpr& c : expr.children) {
    const std::string err = validate_node(spec, c, depth + 1, nodes);
    if (!err.empty()) return err;
  }
  if (expr.kind == ObjectiveExpr::Kind::Lex) {
    // The packed range Π (cap_i + 1) must fit an int64.
    __int128 product = 1;
    for (const ObjectiveExpr& c : expr.children) {
      product *= static_cast<__int128>(expr_cap(spec, c)) + 1;
      if (product > std::numeric_limits<std::int64_t>::max()) {
        return "lex caps overflow the packed axis";
      }
    }
  }
  return {};
}

}  // namespace

std::string to_string(const ObjectiveExpr& expr) {
  std::ostringstream os;
  if (expr.kind == ObjectiveExpr::Kind::Metric) {
    os << expr.metric;
    if (!expr.scenario.empty()) os << '@' << expr.scenario;
    return os.str();
  }
  os << kind_word(expr.kind) << '(';
  for (std::size_t i = 0; i < expr.children.size(); ++i) {
    if (i != 0) os << (expr.kind == ObjectiveExpr::Kind::Weighted ? '+' : ',');
    if (expr.kind == ObjectiveExpr::Kind::Weighted) os << expr.weights[i] << '*';
    os << to_string(expr.children[i]);
  }
  os << ')';
  return os.str();
}

std::string parse_objective_expr(std::string_view text, ObjectiveExpr& out) {
  Parser p{text, 0, {}};
  ObjectiveExpr expr;
  if (!p.parse_expr(expr)) {
    return p.error.empty() ? "malformed objective expression" : p.error;
  }
  if (p.pos != text.size()) {
    return "trailing characters after objective expression";
  }
  out = std::move(expr);
  return {};
}

std::string validate_objective_expr(const Specification& spec,
                                    const ObjectiveExpr& expr) {
  std::size_t nodes = 0;
  return validate_node(spec, expr, 0, nodes);
}

std::int64_t expr_cap(const Specification& spec, const ObjectiveExpr& expr) {
  switch (expr.kind) {
    case ObjectiveExpr::Kind::Metric: {
      if (expr.metric == "latency") {
        if (spec.latency_bound > 0) return spec.latency_bound;
        __int128 cap = 0;
        for (std::size_t t = 0; t < spec.tasks().size(); ++t) {
          std::int64_t worst = 0;
          for (const std::size_t mi : spec.mappings_of(static_cast<TaskId>(t))) {
            worst = std::max(worst, spec.mappings()[mi].wcet);
          }
          cap += worst;
        }
        std::int64_t max_delay = 0;
        for (const Link& l : spec.links()) {
          max_delay = std::max(max_delay, l.hop_delay);
        }
        const __int128 hops = spec.effective_max_hops();
        for (const Message& m : spec.messages()) {
          cap += static_cast<__int128>(m.payload) * max_delay * hops;
        }
        return saturate(cap);
      }
      if (expr.metric == "cost") {
        __int128 cap = 0;
        for (const Resource& r : spec.resources()) cap += r.cost;
        return saturate(cap);
      }
      // energy (nominal or scenario-scaled)
      const std::size_t scn = expr.scenario.empty()
                                  ? Specification::npos
                                  : spec.scenario_index(expr.scenario);
      auto factor = [&](std::size_t resource) -> std::int64_t {
        return scn == Specification::npos
                   ? 1
                   : spec.scenarios()[scn].factor_of(resource);
      };
      __int128 cap = 0;
      for (std::size_t t = 0; t < spec.tasks().size(); ++t) {
        __int128 worst = 0;
        for (const std::size_t mi : spec.mappings_of(static_cast<TaskId>(t))) {
          const MappingOption& o = spec.mappings()[mi];
          worst = std::max(worst, static_cast<__int128>(o.energy) *
                                      factor(o.resource));
        }
        cap += worst;
      }
      __int128 max_hop = 0;
      for (const Link& l : spec.links()) {
        max_hop = std::max(max_hop, static_cast<__int128>(l.hop_energy) *
                                        factor(l.from));
      }
      const __int128 hops = spec.effective_max_hops();
      for (const Message& m : spec.messages()) {
        cap += static_cast<__int128>(m.payload) * max_hop * hops;
      }
      return saturate(cap);
    }
    case ObjectiveExpr::Kind::Lex: {
      __int128 product = 1;
      for (const ObjectiveExpr& c : expr.children) {
        product *= static_cast<__int128>(expr_cap(spec, c)) + 1;
      }
      return saturate(product - 1);
    }
    case ObjectiveExpr::Kind::MinMax:
    case ObjectiveExpr::Kind::Worst: {
      std::int64_t cap = 0;
      for (const ObjectiveExpr& c : expr.children) {
        cap = std::max(cap, expr_cap(spec, c));
      }
      return cap;
    }
    case ObjectiveExpr::Kind::Weighted: {
      __int128 cap = 0;
      for (std::size_t i = 0; i < expr.children.size(); ++i) {
        cap += static_cast<__int128>(expr.weights[i]) *
               expr_cap(spec, expr.children[i]);
      }
      return saturate(cap);
    }
  }
  return 0;
}

std::int64_t lex_pack(const std::vector<std::int64_t>& values,
                      const std::vector<std::int64_t>& caps) {
  __int128 packed = 0;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    const std::int64_t v =
        std::clamp<std::int64_t>(i < values.size() ? values[i] : 0, 0, caps[i]);
    packed = packed * (static_cast<__int128>(caps[i]) + 1) + v;
  }
  return clamp_value(packed);
}

std::int64_t evaluate_objective_expr(const Specification& spec,
                                     const ObjectiveExpr& expr,
                                     const MetricValues& values) {
  switch (expr.kind) {
    case ObjectiveExpr::Kind::Metric: {
      if (expr.metric == "latency") return values.latency;
      if (expr.metric == "cost") return values.cost;
      if (expr.scenario.empty()) return values.energy;
      const std::size_t scn = spec.scenario_index(expr.scenario);
      return scn < values.scenario_energy.size() ? values.scenario_energy[scn]
                                                 : values.energy;
    }
    case ObjectiveExpr::Kind::Lex: {
      std::vector<std::int64_t> vals;
      std::vector<std::int64_t> caps;
      vals.reserve(expr.children.size());
      caps.reserve(expr.children.size());
      for (const ObjectiveExpr& c : expr.children) {
        vals.push_back(evaluate_objective_expr(spec, c, values));
        caps.push_back(expr_cap(spec, c));
      }
      return lex_pack(vals, caps);
    }
    case ObjectiveExpr::Kind::MinMax:
    case ObjectiveExpr::Kind::Worst: {
      std::int64_t worst = 0;
      for (const ObjectiveExpr& c : expr.children) {
        worst = std::max(worst, evaluate_objective_expr(spec, c, values));
      }
      return worst;
    }
    case ObjectiveExpr::Kind::Weighted: {
      __int128 total = 0;
      for (std::size_t i = 0; i < expr.children.size(); ++i) {
        total += static_cast<__int128>(expr.weights[i]) *
                 evaluate_objective_expr(spec, expr.children[i], values);
      }
      return clamp_value(total);
    }
  }
  return 0;
}

}  // namespace aspmt::synth
