// Clause storage for the CDCL engine: a flat arena with compacting GC.
//
// All clauses of one solver live in a single contiguous buffer of 32-bit
// words.  Each clause is a packed 3-word header (size + flag bits, LBD /
// relocation forward, activity) followed by its literals inline, and is
// addressed by a 32-bit `ClauseRef` offset instead of a pointer.  Compared
// to the previous deque-of-Clause layout (node pointer -> Clause -> second
// heap block for the literals) this removes one dependent pointer chase per
// watcher visit, halves the watcher footprint, and lets the propagation
// loop walk memory that stays hot in cache.  Offsets also survive arena
// growth, so references stay valid while clauses are being added.
//
// Deleting a clause only marks it and accounts the space as wasted; the
// solver triggers ClauseArena-assisted compaction (see
// Solver::garbage_collect) which copies the survivors into a fresh arena
// and rewrites every watcher/reason through reloc().  A relocated clause
// leaves a forwarding reference behind (kRelocedBit + forward in the LBD
// word) so shared references converge to the same copy.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "asp/literal.hpp"

namespace aspmt::asp {

/// Offset of a clause inside its solver's ClauseArena.
using ClauseRef = std::uint32_t;

/// Sentinel: "no clause" (decision / root-unit reasons, no conflict).
inline constexpr ClauseRef kClauseRefUndef = 0xffffffffU;

namespace clause_detail {
// Header word 0: [reloced:1][deleted:1][learnt:1][size:29].
inline constexpr std::uint32_t kLearntBit = 1U << 29;
inline constexpr std::uint32_t kDeletedBit = 1U << 30;
inline constexpr std::uint32_t kRelocedBit = 1U << 31;
inline constexpr std::uint32_t kSizeMask = kLearntBit - 1;
// The literals follow the header word immediately; LBD and activity live
// in a two-word *trailer* behind them.  Propagation only ever reads the
// header word and literals, so keeping the bookkeeping out of that span
// tightens the bytes actually touched per clause visit.  Once a clause is
// relocated, literal slot 0 is reused for the forwarding ClauseRef (the
// stale copy is never read as a clause again).
inline constexpr std::uint32_t kHeaderWords = 1;
inline constexpr std::uint32_t kTrailerWords = 2;
}  // namespace clause_detail

/// Non-owning view of one clause inside the arena.  Handles are cheap to
/// construct and must be treated as invalidated by any arena allocation or
/// compaction (the underlying buffer may move).
class Clause {
 public:
  [[nodiscard]] std::size_t size() const noexcept {
    return raw(0).index() & clause_detail::kSizeMask;
  }
  [[nodiscard]] Lit& operator[](std::size_t i) noexcept {
    return p_[clause_detail::kHeaderWords + i];
  }
  [[nodiscard]] Lit operator[](std::size_t i) const noexcept {
    return p_[clause_detail::kHeaderWords + i];
  }
  [[nodiscard]] std::span<const Lit> lits() const noexcept {
    return {p_ + clause_detail::kHeaderWords, size()};
  }
  [[nodiscard]] std::span<Lit> lits() noexcept {
    return {p_ + clause_detail::kHeaderWords, size()};
  }

  [[nodiscard]] bool learnt() const noexcept {
    return (raw(0).index() & clause_detail::kLearntBit) != 0;
  }
  [[nodiscard]] bool deleted() const noexcept {
    return (raw(0).index() & clause_detail::kDeletedBit) != 0;
  }

  [[nodiscard]] float activity() const noexcept {
    return std::bit_cast<float>(raw(activity_slot()).index());
  }
  void bump_activity(float inc) noexcept { set_activity(activity() + inc); }
  void scale_activity(float f) noexcept { set_activity(activity() * f); }

  [[nodiscard]] std::uint32_t lbd() const noexcept {
    return raw(lbd_slot()).index();
  }
  void set_lbd(std::uint32_t lbd) noexcept { set_raw(lbd_slot(), lbd); }

 private:
  friend class ClauseArena;

  explicit Clause(Lit* base) noexcept : p_(base) {}

  // Header words are stored as raw 32-bit values in Lit slots so the whole
  // arena is one homogeneous std::vector<Lit>.
  [[nodiscard]] Lit raw(std::size_t i) const noexcept { return p_[i]; }
  void set_raw(std::size_t i, std::uint32_t v) noexcept {
    p_[i] = Lit::from_index(v);
  }
  void set_activity(float a) noexcept {
    set_raw(activity_slot(), std::bit_cast<std::uint32_t>(a));
  }

  // Trailer slots sit behind the literals (see clause_detail).
  [[nodiscard]] std::size_t lbd_slot() const noexcept {
    return clause_detail::kHeaderWords + size();
  }
  [[nodiscard]] std::size_t activity_slot() const noexcept {
    return lbd_slot() + 1;
  }

  void mark_deleted() noexcept {
    set_raw(0, raw(0).index() | clause_detail::kDeletedBit);
  }
  [[nodiscard]] bool reloced() const noexcept {
    return (raw(0).index() & clause_detail::kRelocedBit) != 0;
  }
  [[nodiscard]] ClauseRef forward() const noexcept {
    return raw(clause_detail::kHeaderWords).index();
  }
  void set_forward(ClauseRef to) noexcept {
    set_raw(0, raw(0).index() | clause_detail::kRelocedBit);
    set_raw(clause_detail::kHeaderWords, to);  // overwrites literal slot 0
  }

  Lit* p_;
};

static_assert(sizeof(Lit) == sizeof(std::uint32_t));

/// Flag bit folded into Watcher::clause for binary clauses: the blocker is
/// the whole rest of the clause, so propagation resolves the visit (skip,
/// imply, or conflict) from the watcher alone without touching clause
/// memory.  Limits the arena to 2^31 words, which alloc() asserts.
inline constexpr ClauseRef kWatcherBinaryFlag = 0x80000000U;

/// Bump allocator for clauses with mark-and-compact garbage collection.
class ClauseArena {
 public:
  /// Allocate a clause; returns its offset.  References returned earlier
  /// remain valid (the buffer grows, offsets do not change).
  ClauseRef alloc(std::span<const Lit> lits, bool learnt) {
    assert(lits.size() <= clause_detail::kSizeMask);
    const std::size_t need = clause_detail::kHeaderWords + lits.size() +
                             clause_detail::kTrailerWords;
    assert(mem_.size() + need < kWatcherBinaryFlag &&
           "clause arena exceeds 31-bit addressing");
    const auto ref = static_cast<ClauseRef>(mem_.size());
    mem_.resize(mem_.size() + need);
    Clause c(mem_.data() + ref);
    // The size must be in place before the trailer slots can be located.
    c.set_raw(0, static_cast<std::uint32_t>(lits.size()) |
                     (learnt ? clause_detail::kLearntBit : 0U));
    for (std::size_t i = 0; i < lits.size(); ++i) c[i] = lits[i];
    c.set_lbd(0);
    c.set_activity(0.0F);
    return ref;
  }

  [[nodiscard]] Clause operator[](ClauseRef ref) noexcept {
    return Clause(mem_.data() + ref);
  }
  /// Read-only access; the returned handle must not be written through.
  [[nodiscard]] Clause operator[](ClauseRef ref) const noexcept {
    return Clause(const_cast<Lit*>(mem_.data()) + ref);
  }

  /// Mark a clause dead and account its space as reclaimable.  The memory
  /// stays valid (and the clause keeps answering deleted()) until the next
  /// compaction.
  void free(ClauseRef ref) noexcept {
    Clause c = (*this)[ref];
    assert(!c.deleted());
    c.mark_deleted();
    wasted_ += clause_detail::kHeaderWords + c.size() +
               clause_detail::kTrailerWords;
  }

  /// Move the clause behind `ref` into arena `to` (first visit copies and
  /// leaves a forwarding reference; later visits follow it) and update
  /// `ref` in place.  Precondition: the clause is not deleted.
  void reloc(ClauseRef& ref, ClauseArena& to) {
    Clause c = (*this)[ref];
    if (c.reloced()) {
      ref = c.forward();
      return;
    }
    assert(!c.deleted());
    const ClauseRef nr = to.alloc(c.lits(), c.learnt());
    Clause nc = to[nr];
    nc.set_lbd(c.lbd());
    nc.set_activity(c.activity());
    c.set_forward(nr);
    ref = nr;
  }

  /// Like reloc(), but for references that may point at freed clauses
  /// (watcher lists after reduce_learnt_db): returns false — leaving `ref`
  /// untouched — when the clause was freed, true after
  /// relocating/forwarding it otherwise.
  [[nodiscard]] bool reloc_if_alive(ClauseRef& ref, ClauseArena& to) {
    const Clause c = (*this)[ref];
    if (c.reloced()) {
      ref = c.forward();
      return true;
    }
    if (c.deleted()) return false;
    reloc(ref, to);
    return true;
  }

  void reserve(std::size_t words) { mem_.reserve(words); }

  /// Start of the arena buffer — for software prefetching only (the
  /// propagation loop hints the next watcher's clause while it works on
  /// the current one).
  [[nodiscard]] const Lit* base() const noexcept { return mem_.data(); }

  [[nodiscard]] std::size_t size_words() const noexcept { return mem_.size(); }
  [[nodiscard]] std::size_t wasted_words() const noexcept { return wasted_; }

  friend void swap(ClauseArena& a, ClauseArena& b) noexcept {
    a.mem_.swap(b.mem_);
    std::swap(a.wasted_, b.wasted_);
  }

 private:
  std::vector<Lit> mem_;
  std::size_t wasted_ = 0;
};

/// Watcher entry: the watched clause plus a "blocker" literal whose truth
/// makes visiting the clause unnecessary.  8 bytes — two per cache line
/// more than the pointer-based predecessor.
struct Watcher {
  ClauseRef clause = kClauseRefUndef;  ///< may carry kWatcherBinaryFlag
  Lit blocker = kLitUndef;
};

}  // namespace aspmt::asp
