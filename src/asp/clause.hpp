// Clause storage for the CDCL engine.
//
// Clauses are owned by the solver in a stable-address arena (deque of nodes);
// watchers and reasons refer to them by raw non-owning pointer.  Learnt
// clauses carry activity and LBD for the reduction policy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "asp/literal.hpp"

namespace aspmt::asp {

class Clause {
 public:
  Clause(std::vector<Lit> lits, bool learnt)
      : lits_(std::move(lits)), learnt_(learnt) {}

  [[nodiscard]] std::size_t size() const noexcept { return lits_.size(); }
  [[nodiscard]] Lit& operator[](std::size_t i) noexcept { return lits_[i]; }
  [[nodiscard]] Lit operator[](std::size_t i) const noexcept { return lits_[i]; }
  [[nodiscard]] std::span<const Lit> lits() const noexcept { return lits_; }
  [[nodiscard]] std::span<Lit> lits() noexcept { return lits_; }

  [[nodiscard]] bool learnt() const noexcept { return learnt_; }
  [[nodiscard]] bool deleted() const noexcept { return deleted_; }
  void mark_deleted() noexcept { deleted_ = true; }

  [[nodiscard]] float activity() const noexcept { return activity_; }
  void bump_activity(float inc) noexcept { activity_ += inc; }
  void scale_activity(float f) noexcept { activity_ *= f; }

  [[nodiscard]] std::uint32_t lbd() const noexcept { return lbd_; }
  void set_lbd(std::uint32_t lbd) noexcept { lbd_ = lbd; }

 private:
  std::vector<Lit> lits_;
  float activity_ = 0.0F;
  std::uint32_t lbd_ = 0;
  bool learnt_ = false;
  bool deleted_ = false;
};

/// Watcher entry: the watched clause plus a "blocker" literal whose truth
/// makes visiting the clause unnecessary.
struct Watcher {
  Clause* clause = nullptr;
  Lit blocker = kLitUndef;
};

}  // namespace aspmt::asp
