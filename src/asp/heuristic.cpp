#include "asp/heuristic.hpp"

#include <cassert>

namespace aspmt::asp {

void VsidsHeap::grow_to(Var v) {
  if (v >= activity_.size()) {
    activity_.resize(v + 1, 0.0);
    position_.resize(v + 1, -1);
  }
  insert(v);
}

void VsidsHeap::bump(Var v) {
  assert(v < activity_.size());
  activity_[v] += increment_;
  if (activity_[v] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    increment_ *= 1e-100;
  }
  if (contains(v)) sift_up(static_cast<std::size_t>(position_[v]));
}

void VsidsHeap::boost(Var v, double amount) {
  assert(v < activity_.size());
  activity_[v] += amount * increment_;
  if (contains(v)) sift_up(static_cast<std::size_t>(position_[v]));
}

void VsidsHeap::insert(Var v) {
  assert(v < activity_.size());
  if (contains(v)) return;
  position_[v] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  sift_up(heap_.size() - 1);
}

Var VsidsHeap::pop() {
  if (heap_.empty()) return kNoVar;
  const Var top = heap_.front();
  position_[top] = -1;
  const Var last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Top-down sift (not Wegener's bottom-up deletion): enumeration
    // workloads leave most activities equal, where the classic sift exits
    // at the root while a hole-sink would pay full depth down and up.
    heap_.front() = last;
    position_[last] = 0;
    sift_down(0);
  }
  return top;
}

void VsidsHeap::sift_up(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!less(heap_[parent], v)) break;
    heap_[i] = heap_[parent];
    position_[heap_[i]] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  position_[v] = static_cast<std::int32_t>(i);
}

void VsidsHeap::sift_down(std::size_t i) {
  const Var v = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && less(heap_[child], heap_[child + 1])) ++child;
    if (!less(v, heap_[child])) break;
    heap_[i] = heap_[child];
    position_[heap_[i]] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  position_[v] = static_cast<std::int32_t>(i);
}

}  // namespace aspmt::asp
