#include "asp/solver.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/recorder.hpp"

namespace aspmt::asp {

Solver::Solver(SolverOptions options) : options_(options) {
  heuristic_.set_decay(options_.var_decay);
  max_learnts_ = options_.learnt_start;
  if (options_.seed != 0) jitter_rng_.reseed(options_.seed);
  // Slot for decision level 0; new_var() keeps the array sized num_vars + 1
  // so compute_lbd can index by level directly.
  lbd_seen_.push_back(0);
}

Var Solver::new_var() {
  const Var v = static_cast<Var>(assign_.size());
  assign_.push_back(Lbool::Undef);
  vardata_.push_back({});
  if (options_.seed != 0) {
    phase_.push_back(jitter_rng_.chance(0.5) ? 1 : 0);
  } else {
    phase_.push_back(options_.default_phase ? 1 : 0);
  }
  seen_.push_back(0);
  lbd_seen_.push_back(0);
  watches_.emplace_back();  // positive literal
  watches_.emplace_back();  // negative literal
  heuristic_.grow_to(v);
  // Jitter breaks ties between zero-activity variables without disturbing
  // domain boosts (which are many orders of magnitude larger).
  if (options_.seed != 0) heuristic_.boost(v, 1e-6 * jitter_rng_.uniform());
  return v;
}

ClauseRef Solver::allocate(std::span<const Lit> lits, bool learnt) {
  return arena_.alloc(lits, learnt);
}

void Solver::attach(ClauseRef cref) {
  const Clause c = arena_[cref];
  assert(c.size() >= 2);
  // Binary clauses are resolved from the watcher alone (the blocker is the
  // whole rest of the clause); the flag spares propagation the arena load.
  const ClauseRef tagged = c.size() == 2 ? (cref | kWatcherBinaryFlag) : cref;
  watches_[(~c[0]).index()].push_back(Watcher{tagged, c[1]});
  watches_[(~c[1]).index()].push_back(Watcher{tagged, c[0]});
}

bool Solver::add_clause(std::vector<Lit> lits) {
  assert(decision_level() == 0);
  if (!ok_) return false;
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<Lit> c;
  c.reserve(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    const Lit l = lits[i];
    if (i + 1 < lits.size() && lits[i + 1] == ~l) return true;  // tautology
    const Lbool v = value(l);
    if (v == Lbool::True) return true;  // satisfied at root
    if (v == Lbool::False) continue;    // false at root: drop
    c.push_back(l);
  }
  // Log the full clause, not the root-simplified one: the checker re-derives
  // the simplification from its own root propagation.
  if (proof_ != nullptr) proof_->input_clause(lits);
  if (c.empty()) {
    ok_ = false;
    return false;
  }
  if (c.size() == 1) {
    enqueue(c[0], kClauseRefUndef);
    if (propagate_clauses() != kClauseRefUndef) ok_ = false;
    return ok_;
  }
  const ClauseRef cref = allocate(c, /*learnt=*/false);
  problem_clauses_.push_back(cref);
  attach(cref);
  return true;
}

Lit Solver::add_guarded_clauses(std::span<const std::vector<Lit>> clauses,
                                std::size_t* installed) {
  assert(decision_level() == 0);
  const Lit guard = Lit::make(new_var(), true);
  std::size_t count = 0;
  for (const std::vector<Lit>& c : clauses) {
    if (!ok_) break;
    if (c.empty()) continue;
    bool in_range = true;
    for (const Lit l : c) in_range = in_range && l.var() < guard.var();
    if (!in_range) continue;
    std::vector<Lit> g;
    g.reserve(c.size() + 1);
    g.push_back(~guard);
    g.insert(g.end(), c.begin(), c.end());
    // add_clause would log the clause as an `I` axiom; a replayed clause is
    // only axiomatic *under its guard*, so detach the log around the install
    // and emit the `G` step (full, unsimplified tail) ourselves.
    ProofLog* const saved = proof_;
    proof_ = nullptr;
    add_clause(std::move(g));
    proof_ = saved;
    if (saved != nullptr) saved->guarded_clause(guard, c);
    ++count;
  }
  if (installed != nullptr) *installed = count;
  return guard;
}

std::vector<std::vector<Lit>> Solver::export_learnts(
    std::uint32_t max_var, std::size_t max_clauses) const {
  std::vector<std::vector<Lit>> out;
  // Root units first: the most general reusable facts.  Between solve()
  // calls the solver sits at level 0, so the whole trail qualifies.  No
  // ok_ gate: after the terminating Unsat the units and learnts are still
  // implied clauses, and a completed run is the prime re-exploration donor.
  for (const Lit l : trail_) {
    if (level(l.var()) != 0) break;
    if (l.var() >= max_var) continue;
    if (out.size() >= max_clauses) return out;
    out.push_back({l});
  }
  std::vector<std::pair<std::uint32_t, ClauseRef>> ranked;
  ranked.reserve(learnt_clauses_.size());
  for (const ClauseRef cref : learnt_clauses_) {
    const Clause c = arena_[cref];
    if (c.deleted()) continue;
    bool in_range = true;
    for (const Lit l : c.lits()) in_range = in_range && l.var() < max_var;
    if (!in_range) continue;
    ranked.emplace_back(c.lbd(), cref);
  }
  std::stable_sort(
      ranked.begin(), ranked.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [lbd, cref] : ranked) {
    (void)lbd;
    if (out.size() >= max_clauses) break;
    const Clause c = arena_[cref];
    out.emplace_back(c.lits().begin(), c.lits().end());
  }
  return out;
}

void Solver::add_propagator(TheoryPropagator* propagator) {
  assert(propagator != nullptr);
  propagators_.push_back(propagator);
}

bool Solver::add_theory_clause(std::span<const Lit> in,
                               const TheoryJustification* just) {
  ++stats_.theory_clauses;
  std::vector<Lit> lits(in.begin(), in.end());
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<Lit> c;
  c.reserve(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    const Lit l = lits[i];
    if (i + 1 < lits.size() && lits[i + 1] == ~l) return true;  // tautology
    const Lbool v = value(l);
    if (v == Lbool::True && level(l.var()) == 0) return true;  // permanently sat
    if (v == Lbool::False && level(l.var()) == 0) continue;    // permanently false
    c.push_back(l);
  }
  if (proof_ != nullptr) {
    // An untagged lemma cannot be replayed; skipping it makes later RUP
    // steps that depend on it fail, so certification fails closed instead
    // of silently trusting the propagator.
    assert(just != nullptr && "proof-logged theory lemma needs a justification");
    if (just != nullptr) proof_->theory_clause(*just, lits);
  }
  if (c.empty()) {
    ok_ = false;
    return false;
  }
  // Order literals so that watchable ones come first: non-false literals,
  // then false literals by decreasing level.  Deterministic tie-break.
  std::sort(c.begin(), c.end(), [this](Lit a, Lit b) {
    const bool fa = value(a) == Lbool::False;
    const bool fb = value(b) == Lbool::False;
    if (fa != fb) return !fa;
    if (fa && fb && level(a.var()) != level(b.var()))
      return level(a.var()) > level(b.var());
    return a < b;
  });
  const ClauseRef cref = allocate(c, /*learnt=*/true);
  Clause cl = arena_[cref];
  cl.set_lbd(compute_lbd(cl.lits()));
  if (cl.size() >= 2) {
    attach(cref);
    learnt_clauses_.push_back(cref);
    ++stats_.learnt_clauses;
  }
  const Lbool v0 = value(cl[0]);
  if (v0 == Lbool::True) return true;
  const bool rest_false = cl.size() == 1 || value(cl[1]) == Lbool::False;
  if (v0 == Lbool::Undef && rest_false) {
    enqueue(cl[0], cref);
    return true;
  }
  if (v0 == Lbool::Undef) return true;  // at least two watchable literals
  // Every literal false: theory conflict.
  pending_conflict_ = cref;
  ++stats_.theory_conflicts;
  return false;
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  assert(value(l) == Lbool::Undef);
  const Var v = l.var();
  assign_[v] = lbool_of(l.positive());
  vardata_[v] = VarData{reason, decision_level()};
  trail_.push_back(l);
}

ClauseRef Solver::propagate_clauses() {
  // Pushing a replacement watch into *another* watch list could, as far as
  // the compiler can prove, move any buffer in sight, so inside the loop it
  // would re-load the assignment array and list pointers on every
  // iteration.  None of them can actually move here: no variables are
  // created during propagation, and a replacement watch never lands on the
  // list being traversed (that list holds watchers of ~p, which is False,
  // while the new watch literal is non-False).  Hoist the invariant
  // pointers into locals.
  const Lbool* const assign = assign_.data();
  const auto val = [assign](Lit l) noexcept {
    return lit_value(assign[l.var()], l);
  };
  std::vector<Watcher>* const lists = watches_.data();
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = lists[p.index()];
    Watcher* const wd = ws.data();
    std::size_t i = 0;
    std::size_t j = 0;
    const std::size_t n = ws.size();
    const Lit* const arena_base = arena_.base();
    while (i < n) {
      const Watcher w = wd[i];
      // The dependent load chain watcher -> clause words is the dominant
      // stall; hint the next watcher's clause while this one is handled.
      // Binary watchers never dereference the arena, so their (flagged)
      // refs would prefetch a junk address — mask keeps it in-buffer.
      if (i + 1 < n) {
        __builtin_prefetch(arena_base + (wd[i + 1].clause & ~kWatcherBinaryFlag));
      }
      // Blocker first: a satisfied blocker makes the clause irrelevant
      // without touching its memory (the common case on dense lists).
      if (val(w.blocker) == Lbool::True) {
        wd[j++] = w;
        ++i;
        continue;
      }
      if ((w.clause & kWatcherBinaryFlag) != 0) {
        // Binary: the blocker is the rest of the clause — unit or conflict.
        const ClauseRef cref = w.clause & ~kWatcherBinaryFlag;
        wd[j++] = w;
        ++i;
        if (val(w.blocker) == Lbool::False) {
          while (i < n) wd[j++] = wd[i++];
          ws.resize(j);
          qhead_ = trail_.size();
          return cref;
        }
        enqueue(w.blocker, cref);
        continue;
      }
      Clause c = arena_[w.clause];
      if (c.deleted()) {
        ++i;  // drop lazily
        continue;
      }
      const Lit false_lit = ~p;
      ++i;
      // Satisfied-by-the-other-watch is the common revisit during
      // enumeration; test it before normalizing the slot order so that
      // path never dirties the clause's cache line.
      const Lit other = c[0] == false_lit ? c[1] : c[0];
      if (val(other) == Lbool::True) {
        wd[j++] = Watcher{w.clause, other};
        continue;
      }
      if (c[0] == false_lit) std::swap(c[0], c[1]);
      assert(c[1] == false_lit);
      bool moved = false;
      const std::size_t size = c.size();
      for (std::size_t k = 2; k < size; ++k) {
        if (val(c[k]) != Lbool::False) {
          std::swap(c[1], c[k]);
          lists[(~c[1]).index()].push_back(Watcher{w.clause, c[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit or conflicting.
      wd[j++] = Watcher{w.clause, c[0]};
      if (val(c[0]) == Lbool::False) {
        while (i < n) wd[j++] = wd[i++];
        ws.resize(j);
        qhead_ = trail_.size();
        return w.clause;
      }
      enqueue(c[0], w.clause);
    }
    ws.resize(j);
  }
  return kClauseRefUndef;
}

ClauseRef Solver::propagate_fixpoint() {
  for (;;) {
    if (pending_conflict_ != kClauseRefUndef) {
      const ClauseRef pc = std::exchange(pending_conflict_, kClauseRefUndef);
      qhead_ = trail_.size();
      return pc;
    }
    if (const ClauseRef c = propagate_clauses(); c != kClauseRefUndef) return c;
    const std::size_t before = trail_.size();
    for (auto* p : propagators_) {
      const bool ok = p->propagate(*this);
      if (!ok || pending_conflict_ != kClauseRefUndef) {
        const ClauseRef pc = std::exchange(pending_conflict_, kClauseRefUndef);
        qhead_ = trail_.size();
        return pc;  // may be undef when ok_ dropped to false
      }
      if (trail_.size() != before) break;  // run BCP before the next theory
    }
    if (trail_.size() == before) return kClauseRefUndef;
  }
}

std::uint32_t Solver::compute_lbd(std::span<const Lit> lits) {
  // lbd_seen_ is sized num_vars + 1 and indexed by decision level directly
  // (levels never exceed the variable count), so distinct levels can never
  // alias and under-count the LBD.
  ++lbd_stamp_;
  std::uint32_t lbd = 0;
  for (const Lit l : lits) {
    const std::uint32_t lv = vardata_[l.var()].level;
    if (lv == 0) continue;
    if (lbd_seen_[lv] != lbd_stamp_) {
      lbd_seen_[lv] = lbd_stamp_;
      ++lbd;
    }
  }
  return lbd == 0 ? 1 : lbd;
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& learnt,
                     std::uint32_t& bt_level) {
  learnt.clear();
  learnt.push_back(kLitUndef);  // slot for the asserting literal
  std::vector<Lit>& to_clear = minimize_stack_;
  to_clear.clear();

  int counter = 0;
  Lit p = kLitUndef;
  ClauseRef cref = conflict;
  std::size_t index = trail_.size();

  do {
    assert(cref != kClauseRefUndef);
    Clause c = arena_[cref];
    // Binary reasons enqueue the watcher blocker, which may be stored as
    // c[1]; put the implied literal first so the skip below stays valid.
    if (p != kLitUndef && c[0] != p) {
      assert(c.size() == 2 && c[1] == p);
      std::swap(c[0], c[1]);
    }
    if (c.learnt()) c.bump_activity(clause_inc_);
    const std::size_t start = (p == kLitUndef) ? 0 : 1;
    for (std::size_t k = start; k < c.size(); ++k) {
      const Lit q = c[k];
      const Var v = q.var();
      if (seen_[v] != 0 || vardata_[v].level == 0) continue;
      seen_[v] = 1;
      to_clear.push_back(q);
      heuristic_.bump(v);
      if (vardata_[v].level == decision_level()) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    while (seen_[trail_[--index].var()] == 0) {
    }
    p = trail_[index];
    cref = vardata_[p.var()].reason;
    seen_[p.var()] = 0;
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  // Local clause minimization: a literal is redundant if its reason consists
  // only of literals already in the learnt clause (or fixed at the root).
  std::size_t out = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (!literal_redundant(learnt[i])) learnt[out++] = learnt[i];
  }
  learnt.resize(out);

  for (const Lit q : to_clear) seen_[q.var()] = 0;
  seen_[p.var()] = 0;

  if (learnt.size() == 1) {
    bt_level = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (vardata_[learnt[i].var()].level > vardata_[learnt[max_i].var()].level)
        max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    bt_level = vardata_[learnt[1].var()].level;
  }
}

bool Solver::literal_redundant(Lit l) {
  const ClauseRef rref = vardata_[l.var()].reason;
  if (rref == kClauseRefUndef) return false;
  Clause r = arena_[rref];
  // Binary reasons may carry the implied literal in slot 1 (see analyze).
  if (r[0].var() != l.var()) {
    assert(r.size() == 2 && r[1].var() == l.var());
    std::swap(r[0], r[1]);
  }
  for (std::size_t k = 1; k < r.size(); ++k) {
    const Lit q = r[k];
    if (vardata_[q.var()].level != 0 && seen_[q.var()] == 0) return false;
  }
  return true;
}

void Solver::record_learnt(std::vector<Lit> learnt, std::uint32_t bt_level) {
  cancel_until(bt_level);
  ++stats_.learnt_clauses;
  if (proof_ != nullptr) proof_->learnt_clause(learnt);
  if (learnt.size() == 1) {
    assert(bt_level == 0);
    enqueue(learnt[0], kClauseRefUndef);
    return;
  }
  const ClauseRef cref = allocate(learnt, /*learnt=*/true);
  Clause c = arena_[cref];
  c.set_lbd(compute_lbd(c.lits()));
  c.bump_activity(clause_inc_);
  attach(cref);
  learnt_clauses_.push_back(cref);
  enqueue(c[0], cref);
}

void Solver::cancel_until(std::uint32_t target_level) {
  if (decision_level() <= target_level) return;
  const std::size_t new_size = trail_lim_[target_level];
  for (std::size_t i = trail_.size(); i-- > new_size;) {
    const Lit l = trail_[i];
    const Var v = l.var();
    if (options_.phase_saving) phase_[v] = l.positive() ? 1 : 0;
    assign_[v] = Lbool::Undef;
    vardata_[v].reason = kClauseRefUndef;
    heuristic_.insert(v);
  }
  trail_.resize(new_size);
  trail_lim_.resize(target_level);
  qhead_ = new_size;
  for (auto* p : propagators_) p->undo_to(*this, new_size);
}

Lit Solver::pick_branch_literal() {
  for (;;) {
    const Var v = heuristic_.pop();
    if (v == kNoVar) return kLitUndef;
    if (assign_[v] == Lbool::Undef) {
      return Lit::make(v, phase_[v] != 0);
    }
  }
}

bool Solver::is_locked(ClauseRef cref) const {
  const Clause c = arena_[cref];
  const Lit l = c[0];
  if (vardata_[l.var()].reason == cref && value(l) != Lbool::Undef) return true;
  // A binary clause can be the reason of either of its literals (the
  // watcher enqueues the blocker without reordering the stored clause).
  if (c.size() == 2) {
    const Lit o = c[1];
    return vardata_[o.var()].reason == cref && value(o) != Lbool::Undef;
  }
  return false;
}

void Solver::reduce_learnt_db() {
  std::sort(learnt_clauses_.begin(), learnt_clauses_.end(),
            [this](ClauseRef a, ClauseRef b) {
              const Clause ca = arena_[a];
              const Clause cb = arena_[b];
              if (ca.lbd() != cb.lbd()) return ca.lbd() > cb.lbd();
              return ca.activity() < cb.activity();
            });
  const std::size_t target = learnt_clauses_.size() / 2;
  std::size_t removed = 0;
  std::size_t out = 0;
  for (std::size_t i = 0; i < learnt_clauses_.size(); ++i) {
    const ClauseRef cref = learnt_clauses_[i];
    const Clause c = arena_[cref];
    const bool keep = removed >= target || c.lbd() <= 2 || c.size() <= 2 ||
                      is_locked(cref);
    if (keep) {
      learnt_clauses_[out++] = cref;
    } else {
      if (proof_ != nullptr) proof_->delete_clause(c.lits());
      arena_.free(cref);
      ++removed;
      ++stats_.deleted_clauses;
    }
  }
  learnt_clauses_.resize(out);
  maybe_garbage_collect();
}

void Solver::maybe_garbage_collect() {
  if (options_.gc_fraction <= 0.0) return;
  const auto wasted = static_cast<double>(arena_.wasted_words());
  const auto size = static_cast<double>(arena_.size_words());
  if (size > 0.0 && wasted >= size * options_.gc_fraction) garbage_collect();
}

void Solver::garbage_collect() {
  assert(pending_conflict_ == kClauseRefUndef);
  ClauseArena to;
  to.reserve(arena_.size_words() - arena_.wasted_words());

  // Relocation order fixes the new layout: reasons first (they are the
  // clauses locked by the current trail), then problem clauses, then the
  // learnt database, then whatever only watchers still reference.  Within
  // every list the relative order — and with it the search trajectory —
  // is preserved exactly.
  for (const Lit l : trail_) {
    ClauseRef& r = vardata_[l.var()].reason;
    if (r != kClauseRefUndef) arena_.reloc(r, to);
  }
  for (ClauseRef& cref : problem_clauses_) arena_.reloc(cref, to);
  for (ClauseRef& cref : learnt_clauses_) arena_.reloc(cref, to);
  for (auto& ws : watches_) {
    std::size_t out = 0;
    for (Watcher& w : ws) {
      const ClauseRef tag = w.clause & kWatcherBinaryFlag;
      ClauseRef cref = w.clause & ~kWatcherBinaryFlag;
      // Watchers of clauses dropped by reduce_learnt_db die with the copy.
      if (!arena_.reloc_if_alive(cref, to)) continue;
      w.clause = cref | tag;
      ws[out++] = w;
    }
    ws.resize(out);
  }
  swap(arena_, to);
  ++stats_.arena_gcs;
}

std::uint64_t Solver::luby(std::uint64_t i) noexcept {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  std::uint64_t k = 1;
  while ((1ULL << (k + 1)) - 1 <= i) ++k;
  while (i != (1ULL << k) - 1) {
    i -= (1ULL << k) - 1;
    k = 1;
    while ((1ULL << (k + 1)) - 1 <= i) ++k;
  }
  return 1ULL << (k - 1);
}

Solver::Result Solver::solve(std::span<const Lit> assumptions,
                             const util::Deadline* deadline) {
  if (!ok_) {
    if (proof_ != nullptr) proof_->conclude_unsat({});
    return Result::Unsat;
  }
  if (options_.recorder != nullptr) {
    options_.recorder->record(obs::EventKind::SolveStart,
                              static_cast<std::int64_t>(assumptions.size()));
  }
  cancel_until(0);
  model_.clear();
  const Result r = search(assumptions, deadline);
  cancel_until(0);
  if (proof_ != nullptr) {
    // With ok_ still true the refutation holds only under the assumptions;
    // once root unsatisfiability is established the claim is global.
    if (r == Result::Unsat) proof_->conclude_unsat(ok_ ? assumptions : std::span<const Lit>{});
    if (r == Result::Sat) proof_->sat_marker();
  }
  if (options_.recorder != nullptr) {
    options_.recorder->record(obs::EventKind::SolveEnd,
                              static_cast<std::int64_t>(r),
                              static_cast<std::int64_t>(stats_.conflicts),
                              static_cast<std::int64_t>(stats_.propagations));
  }
  return r;
}

Solver::Result Solver::search(std::span<const Lit> assumptions,
                              const util::Deadline* deadline) {
  std::uint64_t restart_round = 0;
  std::uint64_t conflict_budget =
      options_.restart_base * luby(restart_round + 1);
  std::uint64_t conflicts_this_round = 0;
  std::vector<Lit> learnt;
  if (options_.monitor != nullptr) options_.monitor->poll(stats_);

  for (;;) {
    if ((deadline != nullptr && deadline->expired()) ||
        (options_.stop != nullptr &&
         options_.stop->load(std::memory_order_relaxed))) {
      cancel_until(0);
      return Result::Unknown;
    }
    const ClauseRef conflict = propagate_fixpoint();
    if (!ok_) return Result::Unsat;
    if (conflict != kClauseRefUndef) {
      ++stats_.conflicts;
      ++conflicts_this_round;
      std::uint32_t max_level = 0;
      for (const Lit l : arena_[conflict].lits()) {
        max_level = std::max(max_level, vardata_[l.var()].level);
      }
      if (max_level == 0) {
        ok_ = false;
        return Result::Unsat;
      }
      if (max_level < decision_level()) cancel_until(max_level);
      std::uint32_t bt_level = 0;
      analyze(conflict, learnt, bt_level);
      record_learnt(std::move(learnt), bt_level);
      learnt = {};
      heuristic_.decay();
      clause_inc_ *= 1.0F / 0.999F;
      if (clause_inc_ > 1e20F) {
        for (const ClauseRef cref : learnt_clauses_) {
          arena_[cref].scale_activity(1e-20F);
        }
        clause_inc_ *= 1e-20F;
      }
      if (options_.gc_every_conflicts != 0 &&
          stats_.conflicts % options_.gc_every_conflicts == 0) {
        garbage_collect();
      }
      if (options_.monitor != nullptr &&
          stats_.conflicts % options_.monitor_interval == 0) {
        options_.monitor->poll(stats_);
      }
      continue;
    }

    // No conflict.
    if (conflicts_this_round >= conflict_budget) {
      ++stats_.restarts;
      if (options_.recorder != nullptr) {
        options_.recorder->record(obs::EventKind::Restart,
                                  static_cast<std::int64_t>(stats_.restarts));
      }
      ++restart_round;
      conflict_budget = options_.restart_base * luby(restart_round + 1);
      conflicts_this_round = 0;
      cancel_until(0);
      if (options_.monitor != nullptr) options_.monitor->poll(stats_);
      continue;
    }
    if (static_cast<double>(learnt_clauses_.size()) > max_learnts_) {
      reduce_learnt_db();
      max_learnts_ *= options_.learnt_growth;
    }

    // Establish assumptions, one decision level each.
    if (decision_level() < assumptions.size()) {
      const Lit a = assumptions[decision_level()];
      if (value(a) == Lbool::False) {
        return Result::Unsat;  // conflicts with the assumptions
      }
      new_decision_level();
      if (value(a) == Lbool::Undef) enqueue(a, kClauseRefUndef);
      continue;
    }

    const Lit next = pick_branch_literal();
    if (next == kLitUndef) {
      // Total assignment: let every theory accept or reject it.
      bool rejected = false;
      const std::size_t before = trail_.size();
      for (auto* p : propagators_) {
        if (!p->check(*this)) {
          rejected = true;
          break;
        }
        if (pending_conflict_ != kClauseRefUndef) {
          rejected = true;
          break;
        }
        if (trail_.size() != before) break;  // theory enqueued something
      }
      if (rejected) continue;                   // conflict handled next loop
      if (trail_.size() != before) continue;    // propagate the new literals
      ++stats_.models;
      model_.assign(assign_.begin(), assign_.end());
      return Result::Sat;
    }
    ++stats_.decisions;
    new_decision_level();
    enqueue(next, kClauseRefUndef);
  }
}

}  // namespace aspmt::asp
