// Unfounded-set checking for non-tight programs.
//
// The Clark completion admits "self-supporting" models on positive cycles;
// stability additionally requires every true atom to be derivable from facts.
// This checker runs as a theory propagator: on total assignments it computes
// the founded set by forward fixpoint and, if any true atom is unfounded,
// injects a loop nogood built from the external support bodies of the
// unfounded set.  For tight programs it reduces to a no-op.
#pragma once

#include <vector>

#include "asp/completion.hpp"
#include "asp/proof.hpp"
#include "asp/propagator.hpp"

namespace aspmt::asp {

class UnfoundedSetChecker final : public TheoryPropagator {
 public:
  /// `compiled` must outlive the checker.
  explicit UnfoundedSetChecker(const CompiledProgram& compiled);

  bool propagate(Solver& solver) override;
  void undo_to(const Solver& solver, std::size_t trail_size) override;
  bool check(Solver& solver) override;

  /// Number of loop nogoods injected so far (statistics).
  [[nodiscard]] std::uint64_t loop_nogoods() const noexcept { return loop_nogoods_; }

  /// Declare the program rules in a proof log (needed for loop-nogood
  /// re-derivation) and tag injected nogoods with their unfounded set.
  void set_proof(ProofLog* proof);

 private:
  const CompiledProgram& compiled_;
  ProofLog* proof_ = nullptr;
  std::uint64_t loop_nogoods_ = 0;

  // scratch buffers reused across checks
  std::vector<char> founded_;
  std::vector<std::uint32_t> missing_;
};

}  // namespace aspmt::asp
