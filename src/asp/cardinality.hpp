// Cardinality constraints over solver literals (Sinz sequential counter).
//
// The synthesis encoder uses these for "exactly one binding per task" and
// hop-uniqueness constraints after the program has been compiled; they are
// plain clauses, so they interact with learning and the unfounded-set
// checker like any completion clause.
#pragma once

#include <span>
#include <vector>

#include "asp/literal.hpp"
#include "asp/solver.hpp"

namespace aspmt::asp {

/// at most `k` of `lits` are true.  k >= 0; k >= lits.size() is a no-op.
void encode_at_most(Solver& solver, std::span<const Lit> lits, std::uint32_t k);

/// at least `k` of `lits` are true.  k == 0 is a no-op; k > lits.size()
/// makes the solver unsatisfiable.
void encode_at_least(Solver& solver, std::span<const Lit> lits, std::uint32_t k);

/// exactly one of `lits` is true (pairwise for small n, sequential above).
void encode_exactly_one(Solver& solver, std::span<const Lit> lits);

/// at most one of `lits` is true.
void encode_at_most_one(Solver& solver, std::span<const Lit> lits);

}  // namespace aspmt::asp
