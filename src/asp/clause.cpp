#include "asp/clause.hpp"

// Clause is header-only; this translation unit anchors the header.
namespace aspmt::asp {}
