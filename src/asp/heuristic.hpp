// VSIDS decision heuristic: an indexed max-heap over variable activities
// with exponential decay (implemented by growing the increment and rescaling
// on overflow) plus phase saving.
#pragma once

#include <cstdint>
#include <vector>

#include "asp/literal.hpp"

namespace aspmt::asp {

class VsidsHeap {
 public:
  /// Register variables up to and including `v`.
  void grow_to(Var v);

  /// Increase a variable's activity (called during conflict analysis).
  void bump(Var v);

  /// One-off additive boost (domain heuristics: decide these vars first).
  void boost(Var v, double amount);

  /// Decay all activities (called once per conflict).
  void decay() noexcept { increment_ /= decay_factor_; }

  /// Put a variable (back) into the heap if absent.
  void insert(Var v);

  /// Pop the variable with maximal activity.  Returns kNoVar if empty.
  [[nodiscard]] Var pop();

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] bool contains(Var v) const noexcept {
    return v < position_.size() && position_[v] >= 0;
  }

  [[nodiscard]] double activity(Var v) const noexcept { return activity_[v]; }

  void set_decay(double d) noexcept { decay_factor_ = d; }

 private:
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  [[nodiscard]] bool less(Var a, Var b) const noexcept {
    return activity_[a] < activity_[b];
  }

  std::vector<Var> heap_;
  std::vector<std::int32_t> position_;  // -1 if not in heap
  std::vector<double> activity_;
  double increment_ = 1.0;
  double decay_factor_ = 0.95;
};

}  // namespace aspmt::asp
