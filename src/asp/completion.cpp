#include "asp/completion.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>

namespace aspmt::asp {
namespace {

/// Tarjan SCC (iterative) over the positive dependency graph.
class SccFinder {
 public:
  SccFinder(std::uint32_t n, const std::vector<std::vector<Atom>>& succ)
      : succ_(succ),
        index_(n, kUnvisited),
        lowlink_(n, 0),
        on_stack_(n, 0),
        scc_of_(n, 0) {}

  void run() {
    for (Atom a = 0; a < index_.size(); ++a) {
      if (index_[a] == kUnvisited) visit(a);
    }
  }

  [[nodiscard]] std::vector<std::uint32_t> take_scc_of() { return std::move(scc_of_); }
  [[nodiscard]] const std::vector<std::uint32_t>& scc_size() const { return scc_size_; }

 private:
  static constexpr std::uint32_t kUnvisited = 0xffffffffU;

  void visit(Atom root) {
    struct Frame {
      Atom atom;
      std::size_t next_edge;
    };
    std::vector<Frame> call_stack{{root, 0}};
    while (!call_stack.empty()) {
      Frame& f = call_stack.back();
      const Atom a = f.atom;
      if (f.next_edge == 0) {
        index_[a] = lowlink_[a] = counter_++;
        stack_.push_back(a);
        on_stack_[a] = 1;
      }
      bool descended = false;
      while (f.next_edge < succ_[a].size()) {
        const Atom b = succ_[a][f.next_edge++];
        if (index_[b] == kUnvisited) {
          call_stack.push_back(Frame{b, 0});
          descended = true;
          break;
        }
        if (on_stack_[b] != 0) lowlink_[a] = std::min(lowlink_[a], index_[b]);
      }
      if (descended) continue;
      // post-order: pop SCC if root
      if (lowlink_[a] == index_[a]) {
        const auto id = static_cast<std::uint32_t>(scc_size_.size());
        std::uint32_t members = 0;
        for (;;) {
          const Atom b = stack_.back();
          stack_.pop_back();
          on_stack_[b] = 0;
          scc_of_[b] = id;
          ++members;
          if (b == a) break;
        }
        scc_size_.push_back(members);
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const Atom parent = call_stack.back().atom;
        lowlink_[parent] = std::min(lowlink_[parent], lowlink_[a]);
      }
    }
  }

  const std::vector<std::vector<Atom>>& succ_;
  std::vector<std::uint32_t> index_;
  std::vector<std::uint32_t> lowlink_;
  std::vector<char> on_stack_;
  std::vector<std::uint32_t> scc_of_;
  std::vector<std::uint32_t> scc_size_;
  std::vector<Atom> stack_;
  std::uint32_t counter_ = 0;
};

}  // namespace

CompiledProgram compile(const Program& program, Solver& solver) {
  CompiledProgram out;
  const std::uint32_t n = program.num_atoms();
  out.atom_var.resize(n);
  for (Atom a = 0; a < n; ++a) out.atom_var[a] = solver.new_var();

  // A constant-true literal used for empty bodies.
  const Var true_var = solver.new_var();
  const Lit true_lit = Lit::make(true_var, true);
  solver.add_clause({true_lit});

  // Normalize a body into a solver-literal conjunction, returning its
  // defining literal (auxiliaries are shared across identical bodies).
  std::map<std::vector<Lit>, Lit> body_cache;
  auto body_literal = [&](const std::vector<BodyLit>& body) -> Lit {
    std::vector<Lit> lits;
    lits.reserve(body.size());
    for (const BodyLit& bl : body) lits.push_back(out.lit(bl));
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
      if (lits[i + 1] == ~lits[i]) return ~true_lit;  // contradictory body
    }
    if (lits.empty()) return true_lit;
    if (lits.size() == 1) return lits[0];
    if (const auto it = body_cache.find(lits); it != body_cache.end()) {
      return it->second;
    }
    const Lit aux = Lit::make(solver.new_var(), true);
    std::vector<Lit> reverse{aux};
    for (const Lit l : lits) {
      solver.add_clause({~aux, l});
      reverse.push_back(~l);
    }
    solver.add_clause(std::move(reverse));
    body_cache.emplace(std::move(lits), aux);
    return aux;
  };

  std::vector<std::vector<Lit>> supports(n);
  std::vector<std::vector<Atom>> pos_succ(n);

  for (const Rule& r : program.rules()) {
    const Lit body = body_literal(r.body);
    supports[r.head].push_back(body);
    if (!r.choice) solver.add_clause({~body, out.lit(r.head)});

    CompiledProgram::CompiledRule cr;
    cr.head = r.head;
    cr.body_lit = body;
    for (const BodyLit& bl : r.body) {
      if (bl.positive) {
        cr.pos_body.push_back(bl.atom);
        pos_succ[r.head].push_back(bl.atom);
      }
    }
    out.rules.push_back(std::move(cr));
  }

  for (Atom a = 0; a < n; ++a) {
    auto& sup = supports[a];
    std::sort(sup.begin(), sup.end());
    sup.erase(std::unique(sup.begin(), sup.end()), sup.end());
    std::vector<Lit> clause{~out.lit(a)};
    clause.insert(clause.end(), sup.begin(), sup.end());
    solver.add_clause(std::move(clause));
  }

  for (const auto& body : program.constraints()) {
    const Lit b = body_literal(body);
    solver.add_clause({~b});
  }

  // Tightness analysis.
  SccFinder scc(n, pos_succ);
  scc.run();
  const auto& sizes = scc.scc_size();
  out.scc_of = scc.take_scc_of();
  out.cyclic.assign(n, 0);
  for (Atom a = 0; a < n; ++a) {
    if (sizes[out.scc_of[a]] > 1) out.cyclic[a] = 1;
  }
  // Self loops: a rule whose head occurs in its own positive body.
  for (const auto& cr : out.rules) {
    for (const Atom b : cr.pos_body) {
      if (b == cr.head) out.cyclic[cr.head] = 1;
    }
  }
  out.tight = std::none_of(out.cyclic.begin(), out.cyclic.end(),
                           [](char c) { return c != 0; });
  return out;
}

}  // namespace aspmt::asp
