// Textual ground-program format (a small gringo-like subset) used by tests,
// examples and debugging dumps.
//
//   % comment
//   a.                         fact
//   a :- b, not c.             normal rule
//   {a} :- b.                  choice rule
//   :- a, b.                   integrity constraint
//   a :- 2 {b; c; not d}.      cardinality rule (expanded, see weight_rule)
//   a :- 5 {3: b; 4: not c}.   weight rule
//   #minimize {2: a; 1: b}.    minimize statement (accumulates)
//
// Atom names are identifiers optionally followed by a balanced parenthesis
// group, e.g. `bind(t1,r2)`.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "asp/program.hpp"

namespace aspmt::asp {

class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Render a program in the textual format (stable order: rules then
/// constraints, in insertion order).
[[nodiscard]] std::string to_text(const Program& program);

/// Parse the textual format.  Atoms are created on first mention.
/// Throws ParseError on malformed input.
[[nodiscard]] Program parse_program(std::string_view text);

}  // namespace aspmt::asp
