#include "asp/unfounded.hpp"

#include <algorithm>

#include "asp/solver.hpp"

namespace aspmt::asp {

UnfoundedSetChecker::UnfoundedSetChecker(const CompiledProgram& compiled)
    : compiled_(compiled) {}

void UnfoundedSetChecker::set_proof(ProofLog* proof) {
  proof_ = proof;
  if (proof_ == nullptr || compiled_.tight) return;  // tight: no loop nogoods
  std::vector<Lit> pos;
  for (const auto& cr : compiled_.rules) {
    pos.clear();
    for (const Atom b : cr.pos_body) pos.push_back(compiled_.lit(b));
    proof_->def_rule(compiled_.lit(cr.head), cr.body_lit, pos);
  }
}

bool UnfoundedSetChecker::propagate(Solver&) { return true; }

void UnfoundedSetChecker::undo_to(const Solver&, std::size_t) {}

bool UnfoundedSetChecker::check(Solver& solver) {
  if (compiled_.tight) return true;

  const std::size_t n = compiled_.atom_var.size();
  founded_.assign(n, 0);
  missing_.assign(compiled_.rules.size(), 0);

  // Forward fixpoint: a rule fires once its body literal is true and all its
  // positive body atoms are founded; its head then becomes founded.
  // `missing_[r]` counts unfounded positive body atoms of rule r.
  std::vector<std::vector<std::uint32_t>> watching(n);  // atom -> rules waiting on it
  std::vector<Atom> queue;

  for (std::size_t r = 0; r < compiled_.rules.size(); ++r) {
    const auto& cr = compiled_.rules[r];
    if (solver.value(cr.body_lit) != Lbool::True) {
      missing_[r] = 0xffffffffU;  // body false: rule can never fire
      continue;
    }
    std::uint32_t need = 0;
    for (const Atom b : cr.pos_body) {
      // Positive body atoms are true here (body literal is true), so only
      // foundedness is pending.
      ++need;
      watching[b].push_back(static_cast<std::uint32_t>(r));
    }
    missing_[r] = need;
    if (need == 0 && founded_[cr.head] == 0) {
      founded_[cr.head] = 1;
      queue.push_back(cr.head);
    }
  }

  while (!queue.empty()) {
    const Atom a = queue.back();
    queue.pop_back();
    for (const std::uint32_t r : watching[a]) {
      if (missing_[r] == 0xffffffffU || missing_[r] == 0) continue;
      if (--missing_[r] == 0) {
        const Atom h = compiled_.rules[r].head;
        if (founded_[h] == 0) {
          founded_[h] = 1;
          queue.push_back(h);
        }
      }
    }
  }

  // Collect the unfounded set: true atoms that never became founded.
  std::vector<Atom> unfounded;
  std::vector<char> in_unfounded(n, 0);
  for (Atom a = 0; a < n; ++a) {
    if (solver.value(compiled_.lit(a)) == Lbool::True && founded_[a] == 0) {
      unfounded.push_back(a);
      in_unfounded[a] = 1;
    }
  }
  if (unfounded.empty()) return true;

  // Loop nogood: some unfounded atom must be false unless one of the
  // external support bodies of the unfounded set holds.
  std::vector<Lit> clause;
  clause.push_back(~compiled_.lit(unfounded.front()));
  for (const auto& cr : compiled_.rules) {
    if (in_unfounded[cr.head] == 0) continue;
    const bool external = std::none_of(
        cr.pos_body.begin(), cr.pos_body.end(),
        [&](Atom b) { return in_unfounded[b] != 0; });
    if (external) clause.push_back(cr.body_lit);
  }
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  ++loop_nogoods_;
  TheoryJustification just{TheoryTag::Unfounded, {}};
  if (solver.proof() != nullptr) {
    just.payload.reserve(unfounded.size());
    for (const Atom a : unfounded) just.payload.push_back(proof_int(compiled_.lit(a)));
  }
  return solver.add_theory_clause(clause, &just);
}

}  // namespace aspmt::asp
