// Ground answer-set programs.
//
// A Program is a bag of normal rules, choice rules and integrity constraints
// over dense atom ids with optional symbolic names.  Encoders build programs
// programmatically (the role the grounder plays in the clingo pipeline);
// `compile()` (completion.hpp) translates a Program into solver clauses.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aspmt::asp {

using Atom = std::uint32_t;

/// A body element: an atom occurring positively (`a`) or under default
/// negation (`not a`).
struct BodyLit {
  Atom atom = 0;
  bool positive = true;

  friend bool operator==(const BodyLit&, const BodyLit&) = default;
};

[[nodiscard]] inline BodyLit pos(Atom a) noexcept { return BodyLit{a, true}; }
[[nodiscard]] inline BodyLit neg(Atom a) noexcept { return BodyLit{a, false}; }

struct Rule {
  Atom head = 0;
  std::vector<BodyLit> body;
  bool choice = false;  ///< true for `{head} :- body.`
};

/// One weighted element of a weight rule body or a minimize statement.
struct WeightedBodyLit {
  BodyLit lit;
  std::int64_t weight = 1;  ///< must be >= 0
};

class Program {
 public:
  /// Create a fresh atom; `name` is kept for diagnostics and text output.
  Atom new_atom(std::string name = {});

  [[nodiscard]] std::uint32_t num_atoms() const noexcept {
    return static_cast<std::uint32_t>(names_.size());
  }

  [[nodiscard]] const std::string& name(Atom a) const { return names_[a]; }
  void set_name(Atom a, std::string name) { names_[a] = std::move(name); }

  /// Look up an atom by name; returns num_atoms() if absent (linear scan —
  /// intended for tests and the text reader, not hot paths).
  [[nodiscard]] Atom find(std::string_view name) const;

  /// `head :- body.`
  void rule(Atom head, std::vector<BodyLit> body);

  /// `{head} :- body.`
  void choice_rule(Atom head, std::vector<BodyLit> body = {});

  /// `head.`
  void fact(Atom head) { rule(head, {}); }

  /// `:- body.`
  void integrity(std::vector<BodyLit> body);

  /// `head :- bound <= #sum { w1 : l1; w2 : l2; ... }.`
  ///
  /// Expanded eagerly into normal rules over fresh auxiliary atoms (a BDD
  /// over the weighted literals), so stable-model semantics — including
  /// positive recursion through the weight body and unfounded-set handling —
  /// is inherited from the normal-rule machinery.  Weights must be
  /// non-negative (clingo-style normalization of negative weights is the
  /// caller's job).  Auxiliary atom count is O(|body| * bound).
  void weight_rule(Atom head, std::int64_t bound, std::vector<WeightedBodyLit> body);

  /// `a :- k { l1; ...; ln }.` — cardinality rule (weight rule, weights 1).
  void cardinality_rule(Atom head, std::int64_t bound, std::vector<BodyLit> body);

  /// `#minimize { w1 : l1; ... }.` at priority level 0.  Terms accumulate
  /// across calls; weights must be non-negative.  The solver core does not
  /// act on these — see theory/asp_minimize.hpp for the optimization driver.
  void minimize(std::vector<WeightedBodyLit> terms) {
    minimize_at(0, std::move(terms));
  }

  /// `#minimize { w : l, ... } @ priority.`  Higher priority levels are
  /// optimised first (clingo convention).
  void minimize_at(std::int32_t priority, std::vector<WeightedBodyLit> terms);

  /// Terms of level 0 (the common case).
  [[nodiscard]] std::span<const WeightedBodyLit> minimize_terms() const noexcept;

  /// All (priority, terms) groups, highest priority first.
  [[nodiscard]] const std::map<std::int32_t, std::vector<WeightedBodyLit>,
                               std::greater<>>&
  minimize_levels() const noexcept {
    return minimize_;
  }

  [[nodiscard]] std::span<const Rule> rules() const noexcept { return rules_; }
  [[nodiscard]] std::span<const std::vector<BodyLit>> constraints() const noexcept {
    return constraints_;
  }

 private:
  /// BDD node for the weight-rule expansion: "the suffix from `index` can
  /// still contribute at least `needed`".  Returns kNodeTrue/kNodeFalse for
  /// the terminal cases.
  static constexpr Atom kNodeTrue = 0xfffffffeU;
  static constexpr Atom kNodeFalse = 0xfffffffdU;
  Atom weight_node(const std::vector<WeightedBodyLit>& body,
                   const std::vector<std::int64_t>& suffix_total,
                   std::size_t index, std::int64_t needed,
                   std::map<std::pair<std::size_t, std::int64_t>, Atom>& memo);

  std::vector<std::string> names_;
  std::vector<Rule> rules_;
  std::vector<std::vector<BodyLit>> constraints_;
  std::map<std::int32_t, std::vector<WeightedBodyLit>, std::greater<>> minimize_;
};

}  // namespace aspmt::asp
