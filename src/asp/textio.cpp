#include "asp/textio.hpp"

#include <cctype>
#include <sstream>
#include <unordered_map>

namespace aspmt::asp {
namespace {

void append_body(std::ostream& os, const Program& p,
                 const std::vector<BodyLit>& body) {
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (i > 0) os << ", ";
    if (!body[i].positive) os << "not ";
    os << p.name(body[i].atom);
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Program run() {
    Program program;
    for (;;) {
      skip_space();
      if (pos_ >= text_.size()) break;
      statement(program);
    }
    return program;
  }

 private:
  void statement(Program& program) {
    if (peek() == '#') {
      ++pos_;
      if (!match_keyword("minimize")) fail("expected 'minimize' after '#'");
      skip_space();
      expect('{');
      program.minimize(weighted_elements(program));
      expect('}');
      expect('.');
      return;
    }
    if (peek() == '{') {
      ++pos_;
      skip_space();
      const Atom head = atom(program);
      skip_space();
      expect('}');
      skip_space();
      std::vector<BodyLit> body;
      if (peek() == ':') body = rule_body(program);
      expect('.');
      program.choice_rule(head, std::move(body));
      return;
    }
    if (peek() == ':') {
      std::vector<BodyLit> body = rule_body(program);
      expect('.');
      program.integrity(std::move(body));
      return;
    }
    const Atom head = atom(program);
    skip_space();
    if (peek() == ':') {
      expect(':');
      expect('-');
      skip_space();
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        // weight / cardinality body:  head :- bound { elems }.
        const std::int64_t bound = integer();
        skip_space();
        expect('{');
        program.weight_rule(head, bound, weighted_elements(program));
        expect('}');
        expect('.');
        return;
      }
      std::vector<BodyLit> body = body_literals(program);
      expect('.');
      program.rule(head, std::move(body));
      return;
    }
    expect('.');
    program.rule(head, {});
  }

  std::vector<BodyLit> rule_body(Program& program) {
    expect(':');
    expect('-');
    return body_literals(program);
  }

  std::vector<BodyLit> body_literals(Program& program) {
    std::vector<BodyLit> body;
    for (;;) {
      skip_space();
      bool positive = true;
      if (match_keyword("not")) {
        positive = false;
        skip_space();
      }
      body.push_back(BodyLit{atom(program), positive});
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    return body;
  }

  /// `[weight :] [not] atom` list separated by ';' (weight defaults to 1).
  std::vector<WeightedBodyLit> weighted_elements(Program& program) {
    std::vector<WeightedBodyLit> elems;
    for (;;) {
      skip_space();
      if (peek() == '}') break;
      std::int64_t weight = 1;
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        weight = integer();
        skip_space();
        expect(':');
        skip_space();
      }
      bool positive = true;
      if (match_keyword("not")) {
        positive = false;
        skip_space();
      }
      elems.push_back(WeightedBodyLit{BodyLit{atom(program), positive}, weight});
      skip_space();
      if (peek() == ';') {
        ++pos_;
        continue;
      }
      break;
    }
    return elems;
  }

  std::int64_t integer() {
    skip_space();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (start == pos_) fail("expected integer");
    return std::stoll(std::string(text_.substr(start, pos_ - start)));
  }

  Atom atom(Program& program) {
    skip_space();
    const std::size_t start = pos_;
    if (pos_ >= text_.size() ||
        !(std::isalpha(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      fail("expected atom name");
    }
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '(') {
      int depth = 0;
      do {
        if (text_[pos_] == '(') ++depth;
        if (text_[pos_] == ')') --depth;
        ++pos_;
        if (pos_ > text_.size()) fail("unbalanced parentheses in atom");
      } while (depth > 0 && pos_ < text_.size());
      if (depth != 0) fail("unbalanced parentheses in atom");
    }
    const std::string name(text_.substr(start, pos_ - start));
    if (const Atom existing = interned(name); existing != kMissing) return existing;
    const Atom a = program.new_atom(name);
    intern_[name] = a;
    return a;
  }

  [[nodiscard]] Atom interned(const std::string& name) const {
    const auto it = intern_.find(name);
    return it == intern_.end() ? kMissing : it->second;
  }

  bool match_keyword(std::string_view kw) {
    if (text_.substr(pos_, kw.size()) != kw) return false;
    const std::size_t end = pos_ + kw.size();
    if (end < text_.size()) {
      const char c = text_[end];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') return false;
    }
    pos_ = end;
    return true;
  }

  void expect(char c) {
    skip_space();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void skip_space() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ < text_.size() && text_[pos_] == '%') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
  }

  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw ParseError(message + " at line " + std::to_string(line));
  }

  static constexpr Atom kMissing = 0xffffffffU;

  std::string_view text_;
  std::size_t pos_ = 0;
  std::unordered_map<std::string, Atom> intern_;
};

}  // namespace

std::string to_text(const Program& program) {
  std::ostringstream os;
  for (const Rule& r : program.rules()) {
    if (r.choice) os << '{' << program.name(r.head) << '}';
    else os << program.name(r.head);
    if (!r.body.empty()) {
      os << " :- ";
      append_body(os, program, r.body);
    }
    os << ".\n";
  }
  for (const auto& c : program.constraints()) {
    os << ":- ";
    append_body(os, program, c);
    os << ".\n";
  }
  if (!program.minimize_terms().empty()) {
    os << "#minimize {";
    bool first = true;
    for (const WeightedBodyLit& t : program.minimize_terms()) {
      if (!first) os << "; ";
      os << t.weight << ": ";
      if (!t.lit.positive) os << "not ";
      os << program.name(t.lit.atom);
      first = false;
    }
    os << "}.\n";
  }
  return os.str();
}

Program parse_program(std::string_view text) { return Parser(text).run(); }

}  // namespace aspmt::asp
