// Theory-propagator interface — the ASPmT extension point.
//
// The contract mirrors clingo's propagator API: after every unit-propagation
// fixpoint the solver hands control to each registered propagator, which may
// inspect the trail and *inject clauses* (theory nogoods).  Injected clauses
// are handled uniformly by the solver: they may be silently attached, cause
// further unit propagation, or raise a conflict that regular CDCL conflict
// analysis resolves.  This uniformity is what lets learned clauses mix
// Boolean and theory reasoning.
#pragma once

#include <cstdint>
#include <span>

#include "asp/literal.hpp"

namespace aspmt::asp {

class Solver;

class TheoryPropagator {
 public:
  virtual ~TheoryPropagator() = default;

  TheoryPropagator() = default;
  TheoryPropagator(const TheoryPropagator&) = delete;
  TheoryPropagator& operator=(const TheoryPropagator&) = delete;

  /// Called at every unit-propagation fixpoint.  The propagator advances its
  /// private cursor over `solver.trail()` and reacts to newly assigned
  /// literals.  To report a theory conflict or a theory implication it calls
  /// `Solver::add_theory_clause`.  Return false iff a conflicting clause was
  /// injected (the solver then runs conflict analysis).
  virtual bool propagate(Solver& solver) = 0;

  /// Called after the solver backtracked.  `trail_size` is the new trail
  /// length; the propagator must rewind any state derived from literals that
  /// were popped.
  virtual void undo_to(const Solver& solver, std::size_t trail_size) = 0;

  /// Called on a total assignment before it is accepted as a model.  Return
  /// false iff a conflicting clause was injected (the candidate is rejected
  /// and search continues).
  virtual bool check(Solver& solver) = 0;

  /// Optional: called when the solver restarts or fully backtracks to the
  /// root.  Default forwards to undo_to.
  virtual void reset(const Solver& solver, std::size_t trail_size) {
    undo_to(solver, trail_size);
  }
};

}  // namespace aspmt::asp
