// Clark completion — translating a ground program into solver clauses.
//
// Each atom gets one solver variable; each non-trivial rule body gets a
// shared auxiliary variable defined by equivalence clauses.  Support clauses
// enforce `atom -> some body`, derivation clauses enforce `body -> atom` for
// non-choice rules.  Tarjan's SCC algorithm over the positive dependency
// graph determines tightness; for non-tight programs the completion is
// complemented by the unfounded-set checker (unfounded.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "asp/program.hpp"
#include "asp/solver.hpp"

namespace aspmt::asp {

/// Result of compiling a Program into a Solver.
struct CompiledProgram {
  /// Solver variable of each atom (indexed by Atom).
  std::vector<Var> atom_var;

  /// Rule images needed by the unfounded-set checker.
  struct CompiledRule {
    Atom head = 0;
    Lit body_lit = kLitUndef;      ///< solver literal equivalent to the body
    std::vector<Atom> pos_body;    ///< positive body atoms
  };
  std::vector<CompiledRule> rules;

  /// SCC id per atom over the positive dependency graph.
  std::vector<std::uint32_t> scc_of;

  /// True for atoms that lie on a positive cycle (member of a non-trivial
  /// SCC or head of a self-loop rule).
  std::vector<char> cyclic;

  /// True iff the program is tight (completion alone captures stability).
  bool tight = true;

  [[nodiscard]] Lit lit(Atom a, bool positive = true) const {
    return Lit::make(atom_var[a], positive);
  }

  [[nodiscard]] Lit lit(const BodyLit& bl) const {
    return Lit::make(atom_var[bl.atom], bl.positive);
  }
};

/// Translate `program` into clauses of `solver`.  Allocates one variable per
/// atom (in atom order) plus shared auxiliaries for rule bodies.  Returns the
/// compiled image; `solver.ok()` is false afterwards iff the completion is
/// unsatisfiable at the root.
[[nodiscard]] CompiledProgram compile(const Program& program, Solver& solver);

}  // namespace aspmt::asp
