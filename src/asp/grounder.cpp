#include "asp/grounder.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <map>
#include <set>
#include <unordered_map>

namespace aspmt::asp {

// ---------------------------------------------------------------------------
// Terms
// ---------------------------------------------------------------------------

bool Term::is_ground() const {
  switch (kind) {
    case Kind::Variable:
      return false;
    case Kind::Function:
      return std::all_of(args.begin(), args.end(),
                         [](const Term& t) { return t.is_ground(); });
    default:
      return true;
  }
}

std::string Term::to_string() const {
  switch (kind) {
    case Kind::Symbol:
    case Kind::Variable:
      return name;
    case Kind::Number:
      return std::to_string(number);
    case Kind::Function: {
      std::string s = name + "(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0) s += ",";
        s += args[i].to_string();
      }
      return s + ")";
    }
  }
  return {};
}

bool operator==(const Term& a, const Term& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Term::Kind::Number:
      return a.number == b.number;
    case Term::Kind::Symbol:
    case Term::Kind::Variable:
      return a.name == b.name;
    case Term::Kind::Function:
      return a.name == b.name && a.args == b.args;
  }
  return false;
}

bool operator<(const Term& a, const Term& b) {
  // Total order: numbers < symbols < variables < functions.
  if (a.kind != b.kind) return a.kind < b.kind;
  switch (a.kind) {
    case Term::Kind::Number:
      return a.number < b.number;
    case Term::Kind::Symbol:
    case Term::Kind::Variable:
      return a.name < b.name;
    case Term::Kind::Function:
      if (a.name != b.name) return a.name < b.name;
      return a.args < b.args;
  }
  return false;
}

std::string NgAtom::to_string() const {
  if (args.empty()) return predicate;
  std::string s = predicate + "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) s += ",";
    s += args[i].to_string();
  }
  return s + ")";
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

constexpr const char* kIntervalFunctor = "..";

class NgParser {
 public:
  explicit NgParser(std::string_view text) : text_(text) {}

  NgProgram run() {
    NgProgram program;
    for (;;) {
      skip_space();
      if (pos_ >= text_.size()) break;
      statement(program);
    }
    return program;
  }

 private:
  void statement(NgProgram& program) {
    NgRule rule;
    if (peek() == '{') {
      ++pos_;
      rule.choice = true;
      rule.head = atom();
      skip_space();
      expect('}');
    } else if (peek() == ':') {
      // constraint; head stays empty
    } else {
      rule.head = atom();
    }
    skip_space();
    if (peek() == ':') {
      expect(':');
      expect('-');
      parse_body(rule);
    }
    expect('.');
    expand_and_push(program, std::move(rule));
  }

  /// Intervals are only supported in facts: expand them into one rule per
  /// integer value.
  void expand_and_push(NgProgram& program, NgRule rule) {
    const auto find_interval = [](const NgAtom& a) -> const Term* {
      for (const Term& t : a.args) {
        if (t.kind == Term::Kind::Function && t.name == kIntervalFunctor) {
          return &t;
        }
      }
      return nullptr;
    };
    if (rule.head.has_value()) {
      if (const Term* iv = find_interval(*rule.head)) {
        if (!rule.body.empty() || !rule.comparisons.empty()) {
          fail("intervals are only supported in facts");
        }
        if (iv->args[0].kind != Term::Kind::Number ||
            iv->args[1].kind != Term::Kind::Number) {
          fail("interval bounds must be integers");
        }
        for (std::int64_t v = iv->args[0].number; v <= iv->args[1].number; ++v) {
          NgRule instance = rule;
          for (Term& t : instance.head->args) {
            if (t.kind == Term::Kind::Function && t.name == kIntervalFunctor) {
              t = Term::number_term(v);
              break;  // one interval per expansion round
            }
          }
          expand_and_push(program, std::move(instance));
        }
        return;
      }
    }
    for (const NgLiteral& l : rule.body) {
      if (find_interval(l.atom) != nullptr) {
        fail("intervals are only supported in facts");
      }
    }
    program.rules.push_back(std::move(rule));
  }

  void parse_body(NgRule& rule) {
    for (;;) {
      skip_space();
      if (match_keyword("not")) {
        skip_space();
        rule.body.push_back(NgLiteral{atom(), false});
      } else {
        // Either a comparison (term OP term) or a positive literal.
        const Term t = term();
        skip_space();
        if (const auto op = try_comparison_op()) {
          skip_space();
          rule.comparisons.push_back(NgComparison{t, *op, term()});
        } else {
          rule.body.push_back(NgLiteral{atom_from_term(t), true});
        }
      }
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
  }

  NgAtom atom() {
    const Term t = term();
    return atom_from_term(t);
  }

  NgAtom atom_from_term(const Term& t) {
    if (t.kind == Term::Kind::Symbol) return NgAtom{t.name, {}};
    if (t.kind == Term::Kind::Function && t.name != kIntervalFunctor) {
      return NgAtom{t.name, t.args};
    }
    fail("expected an atom, got term '" + t.to_string() + "'");
  }

  Term term() {
    skip_space();
    Term t = simple_term();
    skip_space();
    // Interval `lo..hi`.
    if (pos_ + 1 < text_.size() && text_[pos_] == '.' && text_[pos_ + 1] == '.') {
      pos_ += 2;
      Term hi = simple_term();
      return Term::function(kIntervalFunctor, {std::move(t), std::move(hi)});
    }
    return t;
  }

  Term simple_term() {
    skip_space();
    const char c = peek();
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      return Term::number_term(integer());
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::string name = identifier();
      const bool is_var = std::isupper(static_cast<unsigned char>(name[0])) ||
                          name[0] == '_';
      skip_space();
      if (!is_var && peek() == '(') {
        ++pos_;
        std::vector<Term> args;
        for (;;) {
          args.push_back(term());
          skip_space();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          break;
        }
        expect(')');
        return Term::function(name, std::move(args));
      }
      return is_var ? Term::variable(name) : Term::symbol(name);
    }
    fail("expected a term");
  }

  std::string identifier() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (start == pos_) fail("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  std::int64_t integer() {
    skip_space();
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (start == pos_ || (pos_ - start == 1 && text_[start] == '-')) {
      fail("expected integer");
    }
    return std::stoll(std::string(text_.substr(start, pos_ - start)));
  }

  std::optional<CompareOp> try_comparison_op() {
    const auto two = [&](char a, char b) {
      return pos_ + 1 < text_.size() && text_[pos_] == a && text_[pos_ + 1] == b;
    };
    if (two('!', '=')) { pos_ += 2; return CompareOp::Ne; }
    if (two('<', '=')) { pos_ += 2; return CompareOp::Le; }
    if (two('>', '=')) { pos_ += 2; return CompareOp::Ge; }
    if (peek() == '<') { ++pos_; return CompareOp::Lt; }
    if (peek() == '>') { ++pos_; return CompareOp::Gt; }
    if (peek() == '=') { ++pos_; return CompareOp::Eq; }
    return std::nullopt;
  }

  bool match_keyword(std::string_view kw) {
    if (text_.substr(pos_, kw.size()) != kw) return false;
    const std::size_t end = pos_ + kw.size();
    if (end < text_.size()) {
      const char c = text_[end];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') return false;
    }
    pos_ = end;
    return true;
  }

  void expect(char c) {
    skip_space();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void skip_space() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ < text_.size() && text_[pos_] == '%') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
  }

  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw GroundError(message + " at line " + std::to_string(line));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Grounding
// ---------------------------------------------------------------------------

using Substitution = std::map<std::string, Term>;

Term substitute(const Term& t, const Substitution& subst) {
  switch (t.kind) {
    case Term::Kind::Variable: {
      const auto it = subst.find(t.name);
      return it == subst.end() ? t : it->second;
    }
    case Term::Kind::Function: {
      Term out = t;
      for (Term& a : out.args) a = substitute(a, subst);
      return out;
    }
    default:
      return t;
  }
}

/// Unify a (possibly non-ground) pattern with a ground term, extending
/// `subst`; returns false on mismatch (bindings may be partially added, so
/// callers copy the substitution before trying).
bool unify(const Term& pattern, const Term& ground, Substitution& subst) {
  switch (pattern.kind) {
    case Term::Kind::Variable: {
      const auto [it, inserted] = subst.emplace(pattern.name, ground);
      return inserted || it->second == ground;
    }
    case Term::Kind::Function:
      if (ground.kind != Term::Kind::Function || ground.name != pattern.name ||
          ground.args.size() != pattern.args.size()) {
        return false;
      }
      for (std::size_t i = 0; i < pattern.args.size(); ++i) {
        if (!unify(pattern.args[i], ground.args[i], subst)) return false;
      }
      return true;
    default:
      return pattern == ground;
  }
}

bool evaluate(const NgComparison& cmp, const Substitution& subst) {
  const Term l = substitute(cmp.lhs, subst);
  const Term r = substitute(cmp.rhs, subst);
  if (!l.is_ground() || !r.is_ground()) {
    throw GroundError("comparison over unbound variable (unsafe rule?)");
  }
  switch (cmp.op) {
    case CompareOp::Eq: return l == r;
    case CompareOp::Ne: return !(l == r);
    case CompareOp::Lt: return l < r;
    case CompareOp::Le: return l < r || l == r;
    case CompareOp::Gt: return r < l;
    case CompareOp::Ge: return r < l || l == r;
  }
  return false;
}

void collect_variables(const Term& t, std::set<std::string>& out) {
  if (t.kind == Term::Kind::Variable) out.insert(t.name);
  for (const Term& a : t.args) collect_variables(a, out);
}

void check_safety(const NgRule& rule) {
  std::set<std::string> bound;
  for (const NgLiteral& l : rule.body) {
    if (!l.positive) continue;
    for (const Term& t : l.atom.args) collect_variables(t, bound);
  }
  std::set<std::string> used;
  if (rule.head.has_value()) {
    for (const Term& t : rule.head->args) collect_variables(t, used);
  }
  for (const NgLiteral& l : rule.body) {
    if (l.positive) continue;
    for (const Term& t : l.atom.args) collect_variables(t, used);
  }
  for (const NgComparison& c : rule.comparisons) {
    collect_variables(c.lhs, used);
    collect_variables(c.rhs, used);
  }
  for (const std::string& v : used) {
    if (bound.count(v) == 0) {
      throw GroundError("unsafe rule: variable '" + v +
                        "' does not occur in a positive body literal");
    }
  }
}

/// Ground-atom database: predicate -> set of ground argument tuples.
using Database = std::map<std::string, std::set<std::vector<Term>>>;

/// Enumerate substitutions matching the positive body against `db`.
template <typename Callback>
void instantiate(const NgRule& rule, const Database& db, std::size_t index,
                 Substitution& subst, const Callback& callback) {
  // Find the next positive literal.
  while (index < rule.body.size() && !rule.body[index].positive) ++index;
  if (index >= rule.body.size()) {
    for (const NgComparison& c : rule.comparisons) {
      if (!evaluate(c, subst)) return;
    }
    callback(subst);
    return;
  }
  const NgAtom& pattern = rule.body[index].atom;
  const auto it = db.find(pattern.predicate);
  if (it == db.end()) return;
  for (const std::vector<Term>& tuple : it->second) {
    if (tuple.size() != pattern.args.size()) continue;
    Substitution extended = subst;
    bool ok = true;
    for (std::size_t i = 0; i < tuple.size() && ok; ++i) {
      ok = unify(pattern.args[i], tuple[i], extended);
    }
    if (ok) instantiate(rule, db, index + 1, extended, callback);
  }
}

std::size_t term_depth(const Term& t) {
  std::size_t d = 0;
  for (const Term& a : t.args) d = std::max(d, term_depth(a));
  return d + 1;
}

std::vector<Term> substituted_args(const NgAtom& atom, const Substitution& s) {
  // Depth cap: programs like `p(s(X)) :- p(X).` build ever-deeper terms;
  // cutting at a fixed nesting depth turns non-termination into a clean
  // error long before the iteration/atom caps get expensive.
  constexpr std::size_t kDepthCap = 48;
  std::vector<Term> out;
  out.reserve(atom.args.size());
  for (const Term& t : atom.args) {
    Term g = substitute(t, s);
    if (!g.is_ground()) {
      throw GroundError("atom '" + atom.to_string() +
                        "' not fully instantiated (unsafe rule?)");
    }
    if (term_depth(g) > kDepthCap) {
      throw GroundError("term nesting exceeds depth " +
                        std::to_string(kDepthCap) +
                        " — non-terminating grounding?");
    }
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace

NgProgram parse_nonground(std::string_view text) { return NgParser(text).run(); }

Program ground(const NgProgram& ng, GroundStats* stats) {
  for (const NgRule& rule : ng.rules) check_safety(rule);

  // Naive (non-semi-naive) fixpoint: each round rescans the database, so
  // the caps keep pathological programs (e.g. p(s(X)) :- p(X)) from
  // spinning; realistic recursion depths converge in a handful of rounds.
  constexpr std::size_t kAtomCap = 500'000;
  constexpr std::size_t kIterationCap = 5'000;

  // Phase 1: derivable-atom fixpoint (negative body ignored).
  Database db;
  std::size_t iterations = 0;
  std::size_t total_atoms = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    if (++iterations > kIterationCap) {
      throw GroundError("grounding did not converge (iteration cap)");
    }
    for (const NgRule& rule : ng.rules) {
      if (!rule.head.has_value()) continue;
      Substitution subst;
      instantiate(rule, db, 0, subst, [&](const Substitution& s) {
        auto tuple = substituted_args(*rule.head, s);
        if (db[rule.head->predicate].insert(std::move(tuple)).second) {
          changed = true;
          if (++total_atoms > kAtomCap) {
            throw GroundError("grounding did not converge (atom cap)");
          }
        }
      });
    }
  }

  // Phase 2: emit simplified ground rules.
  Program program;
  std::unordered_map<std::string, Atom> interned;
  const auto intern = [&](const std::string& predicate,
                          const std::vector<Term>& args) {
    NgAtom ga{predicate, args};
    const std::string name = ga.to_string();
    const auto it = interned.find(name);
    if (it != interned.end()) return it->second;
    const Atom a = program.new_atom(name);
    interned.emplace(name, a);
    return a;
  };

  std::size_t rule_count = 0;
  for (const NgRule& rule : ng.rules) {
    Substitution subst;
    instantiate(rule, db, 0, subst, [&](const Substitution& s) {
      std::vector<BodyLit> body;
      for (const NgLiteral& l : rule.body) {
        const auto args = substituted_args(l.atom, s);
        const auto it = db.find(l.atom.predicate);
        const bool derivable = it != db.end() && it->second.count(args) != 0;
        if (l.positive) {
          assert(derivable && "positive literals are matched against db");
          body.push_back(pos(intern(l.atom.predicate, args)));
        } else if (derivable) {
          body.push_back(neg(intern(l.atom.predicate, args)));
        }
        // `not a` with underivable a is simply true: drop the literal.
      }
      if (!rule.head.has_value()) {
        program.integrity(std::move(body));
      } else {
        const Atom head = intern(rule.head->predicate,
                                 substituted_args(*rule.head, s));
        if (rule.choice) {
          program.choice_rule(head, std::move(body));
        } else {
          program.rule(head, std::move(body));
        }
      }
      ++rule_count;
    });
  }

  if (stats != nullptr) {
    stats->ground_atoms = program.num_atoms();
    stats->ground_rules = rule_count;
    stats->iterations = iterations;
  }
  return program;
}

Program ground_text(std::string_view text, GroundStats* stats) {
  return ground(parse_nonground(text), stats);
}

}  // namespace aspmt::asp
