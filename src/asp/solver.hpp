// Conflict-driven Boolean constraint solver with a theory-propagator hook —
// the CDNL engine underneath the ASPmT stack.
//
// Features: two-watched-literal propagation with blockers, 1UIP clause
// learning with local minimization, VSIDS + phase saving, Luby restarts,
// LBD/activity-based learnt-clause reduction, assumptions, and uniform
// handling of clauses injected by theory propagators at any decision level
// (the clingo-style ASPmT integration described in the paper series).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "asp/clause.hpp"
#include "asp/heuristic.hpp"
#include "asp/literal.hpp"
#include "asp/proof.hpp"
#include "asp/propagator.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace aspmt::obs {
class Recorder;
}

namespace aspmt::asp {

struct SolverStats {
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_clauses = 0;
  std::uint64_t deleted_clauses = 0;
  std::uint64_t theory_clauses = 0;
  std::uint64_t theory_conflicts = 0;
  std::uint64_t models = 0;
  std::uint64_t arena_gcs = 0;  ///< clause-arena compactions

  /// Accumulate another solver's counters (parallel portfolio reporting).
  void merge(const SolverStats& other) noexcept {
    conflicts += other.conflicts;
    decisions += other.decisions;
    propagations += other.propagations;
    restarts += other.restarts;
    learnt_clauses += other.learnt_clauses;
    deleted_clauses += other.deleted_clauses;
    theory_clauses += other.theory_clauses;
    theory_conflicts += other.theory_conflicts;
    models += other.models;
    arena_gcs += other.arena_gcs;
  }
};

/// Off-hot-path observer of a running search.  The solver calls poll() at
/// solve() entry, at every restart, and every SolverOptions::monitor_interval
/// conflicts — frequently enough to enforce resource budgets with sub-second
/// latency, rarely enough that the poll may take locks or syscalls.  A
/// monitor typically accounts conflicts against a shared budget and trips
/// the solver's stop token, making the current solve() return Unknown.
class SearchMonitor {
 public:
  virtual ~SearchMonitor() = default;
  virtual void poll(const SolverStats& stats) = 0;
};

struct SolverOptions {
  double var_decay = 0.95;
  std::uint32_t restart_base = 100;   ///< Luby unit, in conflicts.
  double learnt_growth = 1.3;         ///< Growth factor of the learnt-DB cap.
  std::uint32_t learnt_start = 2000;  ///< Initial learnt-DB cap.
  bool default_phase = false;         ///< Polarity when no phase is saved.
  bool phase_saving = true;
  /// Diversification seed for portfolio solving.  0 (default) keeps the
  /// solver fully deterministic; non-zero adds a tiny random jitter to the
  /// initial VSIDS activity of every variable (breaking tie-order between
  /// otherwise equal variables) and randomizes initial phases — the
  /// trajectory changes, the answer never does.
  std::uint64_t seed = 0;
  /// Optional cooperative cancellation: polled alongside the deadline at
  /// every search step; when it reads true, solve() returns Unknown.  The
  /// pointee must outlive every solve() call.
  const std::atomic<bool>* stop = nullptr;
  /// Compact the clause arena once at least this fraction of it is dead
  /// space left behind by reduce_learnt_db.  Compaction relocates the
  /// surviving clauses and rewrites all watchers/reasons; it never changes
  /// the search trajectory.  <= 0 disables compaction entirely.
  double gc_fraction = 0.25;
  /// Testing/diagnostics: additionally force a compaction every N
  /// conflicts (0 = wasted-fraction trigger only).  Search results, stats
  /// and proof streams are identical for every value.
  std::uint32_t gc_every_conflicts = 0;
  /// Optional resource monitor, polled off the hot path (see SearchMonitor).
  /// The pointee must outlive every solve() call.  Monitors observe the
  /// search; they never alter its trajectory.
  SearchMonitor* monitor = nullptr;
  /// Conflicts between two monitor polls (also polled at solve() entry and
  /// at every restart).  Must be non-zero.
  std::uint32_t monitor_interval = 1024;
  /// Optional observability producer (see obs/recorder.hpp): solve()
  /// entry/exit and restarts are recorded when attached.  nullptr (default)
  /// costs one pointer test per solve() and per restart — the propagation
  /// loop itself carries no instrumentation at all.  Recording never alters
  /// the search trajectory.
  obs::Recorder* recorder = nullptr;
};

class Solver {
 public:
  enum class Result : std::uint8_t { Sat, Unsat, Unknown };

  explicit Solver(SolverOptions options = {});

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  // ---- problem construction (root level) --------------------------------

  /// Allocate a fresh variable and return its index.
  Var new_var();

  [[nodiscard]] std::uint32_t num_vars() const noexcept {
    return static_cast<std::uint32_t>(assign_.size());
  }

  /// Add a problem clause.  Returns false if the solver became trivially
  /// unsatisfiable (conflict at the root level).  May be called between
  /// solve() invocations (the solver is always at level 0 there).
  bool add_clause(std::vector<Lit> lits);

  /// Install foreign clauses (e.g. a learnt-clause dump from a previous
  /// session) behind one fresh assumption guard g: every clause c becomes
  /// (~g v c).  Solving with g among the assumptions makes the replayed
  /// clauses bite; solving without (or after learning ~g) silently disables
  /// them, so a wrong or stale dump can prune nothing from the final
  /// answer — completeness never depends on the replay.  Clauses that
  /// mention variables >= the guard's (out of the declared range) or are
  /// empty are skipped.  Proof-logged as `G` steps, which the checker
  /// admits via the guard-purity argument (see asp/proof.hpp).  Returns g;
  /// `installed`, when non-null, receives the number of clauses installed.
  Lit add_guarded_clauses(std::span<const std::vector<Lit>> clauses,
                          std::size_t* installed = nullptr);

  /// Snapshot the reusable clause state for a later session: all root-level
  /// units plus the live learnt clauses whose variables are all < max_var
  /// (the stable encoding prefix), best (lowest-LBD) first, capped at
  /// max_clauses.  Call between solve() invocations (level 0).  Also valid
  /// after a final Unsat verdict (ok() == false): units and learnts remain
  /// implied clauses of the formula — exactly what a later session replays —
  /// so a completed run's snapshot still carries its dump.
  [[nodiscard]] std::vector<std::vector<Lit>> export_learnts(
      std::uint32_t max_var, std::size_t max_clauses = 4096) const;

  /// Register a theory propagator (non-owning; the caller keeps ownership
  /// and must outlive the solver's use).
  void add_propagator(TheoryPropagator* propagator);

  /// False once root-level unsatisfiability has been established.
  [[nodiscard]] bool ok() const noexcept { return ok_; }

  // ---- solving -----------------------------------------------------------

  /// Search for a model extending `assumptions`.  Returns Unknown only when
  /// the deadline expires.  On Sat the model is available via model_value()
  /// until the next call that modifies the solver.
  Result solve(std::span<const Lit> assumptions = {},
               const util::Deadline* deadline = nullptr);

  // ---- assignment inspection (propagators + conflict analysis) -----------

  [[nodiscard]] Lbool value(Var v) const noexcept { return assign_[v]; }
  [[nodiscard]] Lbool value(Lit l) const noexcept { return lit_value(assign_[l.var()], l); }
  [[nodiscard]] std::span<const Lit> trail() const noexcept { return trail_; }
  [[nodiscard]] std::uint32_t decision_level() const noexcept {
    return static_cast<std::uint32_t>(trail_lim_.size());
  }
  [[nodiscard]] std::uint32_t level(Var v) const noexcept {
    return vardata_[v].level;
  }

  // ---- model access (after Result::Sat) ----------------------------------

  [[nodiscard]] bool model_value(Var v) const noexcept {
    return model_[v] == Lbool::True;
  }
  [[nodiscard]] const std::vector<Lbool>& model() const noexcept { return model_; }

  // ---- theory interface ---------------------------------------------------

  /// Inject a clause discovered by theory reasoning.  Handles every case
  /// uniformly: satisfied/open clauses are attached, unit clauses propagate,
  /// falsified clauses raise a conflict.  Returns false iff the clause is
  /// conflicting under the current assignment; the propagator must then
  /// immediately return false from its propagate()/check() callback.
  /// When proof logging is on, `just` tags the lemma for the checker;
  /// propagators must supply it whenever proof() is non-null.
  bool add_theory_clause(std::span<const Lit> lits,
                         const TheoryJustification* just = nullptr);

  /// Attach a proof log (nullptr detaches).  Must be set before any clause
  /// is added so the trace covers the whole session; the pointee must
  /// outlive every solver call.
  void set_proof(ProofLog* proof) noexcept { proof_ = proof; }
  [[nodiscard]] ProofLog* proof() const noexcept { return proof_; }

  /// Bump decision priority of a variable (domain heuristics).
  void bump_variable(Var v) { heuristic_.bump(v); }

  /// Strong one-off priority boost so the variable is decided early
  /// (domain heuristics, e.g. binding before routing).
  void boost_variable(Var v, double amount) { heuristic_.boost(v, amount); }

  /// Suggest the polarity tried first for a variable.
  void set_preferred_phase(Var v, bool positive) {
    phase_[v] = positive;
  }

  [[nodiscard]] const SolverStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const SolverOptions& options() const noexcept { return options_; }

  [[nodiscard]] std::size_t num_problem_clauses() const noexcept {
    return problem_clauses_.size();
  }
  [[nodiscard]] std::size_t num_learnt_clauses() const noexcept {
    return learnt_clauses_.size();
  }

 private:
  // search machinery
  Result search(std::span<const Lit> assumptions, const util::Deadline* deadline);
  [[nodiscard]] ClauseRef propagate_fixpoint();
  [[nodiscard]] ClauseRef propagate_clauses();
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt, std::uint32_t& bt_level);
  [[nodiscard]] bool literal_redundant(Lit l);
  void record_learnt(std::vector<Lit> learnt, std::uint32_t bt_level);
  void enqueue(Lit l, ClauseRef reason);
  void cancel_until(std::uint32_t target_level);
  void new_decision_level() { trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size())); }
  [[nodiscard]] Lit pick_branch_literal();
  void reduce_learnt_db();
  void maybe_garbage_collect();
  void garbage_collect();
  void attach(ClauseRef cref);
  [[nodiscard]] std::uint32_t compute_lbd(std::span<const Lit> lits);
  [[nodiscard]] bool is_locked(ClauseRef cref) const;
  [[nodiscard]] static std::uint64_t luby(std::uint64_t i) noexcept;

  /// Allocate a clause in the arena (literals are copied inline).
  ClauseRef allocate(std::span<const Lit> lits, bool learnt);

  SolverOptions options_;
  SolverStats stats_;

  ClauseArena arena_;
  std::vector<ClauseRef> problem_clauses_;
  std::vector<ClauseRef> learnt_clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index of the *falsified* literal

  /// Reason and decision level of a variable, packed into 8 bytes so
  /// enqueue and conflict analysis touch one cache line per variable
  /// instead of two (MiniSat's VarData layout).
  struct VarData {
    ClauseRef reason = kClauseRefUndef;
    std::uint32_t level = 0;
  };

  std::vector<Lbool> assign_;
  std::vector<VarData> vardata_;
  std::vector<Lit> trail_;
  std::vector<std::uint32_t> trail_lim_;
  std::size_t qhead_ = 0;

  VsidsHeap heuristic_;
  util::Rng jitter_rng_;
  std::vector<char> phase_;
  std::vector<char> seen_;
  std::vector<Lit> minimize_stack_;

  std::vector<TheoryPropagator*> propagators_;
  ClauseRef pending_conflict_ = kClauseRefUndef;
  ProofLog* proof_ = nullptr;

  std::vector<Lbool> model_;
  std::vector<Lit> root_units_;  // units injected/learnt, replayed after restarts

  double max_learnts_ = 0.0;
  float clause_inc_ = 1.0F;
  std::vector<std::uint32_t> lbd_seen_;
  std::uint32_t lbd_stamp_ = 0;

  bool ok_ = true;
};

}  // namespace aspmt::asp
