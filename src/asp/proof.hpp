// DRAT-style proof logging for the ASPmT stack.
//
// When a ProofLog is attached, the solver and every theory propagator emit a
// line-oriented trace of the whole incremental session: the constraint
// system as it is declared (input clauses, linear sums, difference edges,
// bound declarations, program rules, objective bindings), every inference
// (learnt clauses as RUP additions, theory lemmas with a tagged
// justification), deletions, and one conclusion step per solve() call that
// ends in Unsat.  The stream is replayable by the solver-independent checker
// in src/cert/, which re-runs unit propagation for every RUP step and
// re-derives every theory lemma from the declared theory data alone — so an
// Unsat answer (and with it the exactness of an explored Pareto front)
// becomes a machine-checkable fact instead of a solver's word.
//
// Format (text, one step per line, literals as signed 1-based integers):
//
//   p aspmt 1                         header
//   S  <sum> <n> (<lit> <w>)*        linear sum definition
//   SB <sum> <bound> <act>           sum bound declaration (act 0 = none)
//   SL <sum> <bound> <act>           sum floor declaration  sum >= bound
//                                    (shard banding; act 0 = none)
//   N  <node>                        difference-logic node
//   E  <edge> <from> <to> <w> <n> <lit>*   guarded edge  to >= from + w
//   NB <node> <bound> <act>          node bound declaration
//   O  <obj> <term>                  objective binding; <term> is a tree:
//                                      L <sum> | D <node>
//                                    | X <k> <cap>{k} <term>{k}   lex packing
//                                    | M <k> <term>{k}            min-max
//                                    | W <k> <w>{k} <term>{k}     weighted
//                                    | V <k> <term>{k}            scenario worst
//                                    (leaf-only bindings are the legacy form)
//   OB <obj> <bound> <act>           combinator-axis bound declaration:
//                                    objective <obj> <= bound while act holds
//   PR <head> <body> <n> <poshead>*  program rule (for loop nogoods)
//   I  <lit>* 0                      input clause (axiom)
//   G  <guard> <lit>* 0              guarded replay axiom: the clause
//                                    (-guard v lits) is installed.  The
//                                    checker admits it only when the guard
//                                    variable is *pure*: fresh w.r.t. every
//                                    axiom/declaration and occurring only
//                                    negatively in axioms, so any model of
//                                    the original system extends with
//                                    guard=false and Unsat is preserved.
//   L  <lit>* 0                      learnt clause, RUP-checkable
//   T  <tag> <payload>* ; <lit>* 0   theory lemma with justification
//   D  <lit>* 0                      clause deletion
//   U  <lit>* 0                      Unsat conclusion under assumptions
//                                    (no literals = global unsatisfiability)
//   M  0                             model accepted (marker)
//   F  <k> <v>* 0                    feasible objective vector published
//   X  0                             stream truncated (budget/interrupt);
//                                    everything above remains checkable
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "asp/literal.hpp"

namespace aspmt::asp {

/// Which theory justifies an injected lemma; drives the checker's
/// re-derivation.
enum class TheoryTag : std::uint8_t {
  DiffCycle,    ///< positive cycle among edges guarded by the clause literals
  DiffBound,    ///< longest path to a node exceeds a declared bound
  LinearBound,  ///< weighted true guards exceed a declared sum bound
  Unfounded,    ///< loop nogood for an unfounded set (payload: head lits)
  Dominance,    ///< region weakly dominated by a certified feasible point
  LinearLower,  ///< falsified guards forfeit too much weight for a sum floor
  CombinatorBound,  ///< combinator-axis lower bound exceeds a declared OB bound
};

struct TheoryJustification {
  TheoryTag tag;
  /// Tag-specific integers (bounds, node/sum ids, points, head literals).
  std::vector<std::int64_t> payload;
};

/// Append-only proof stream.  Not thread-safe: in portfolio solving every
/// worker owns its own log.
class ProofLog {
 public:
  ProofLog() { buf_ = "p aspmt 1\n"; }

  // ---- constraint-system declarations ------------------------------------
  void def_sum(std::uint32_t sum, std::span<const std::pair<Lit, std::int64_t>> terms);
  void def_sum_bound(std::uint32_t sum, std::int64_t bound, Lit activation);
  /// `sum >= bound` floor (distributed shard banding): `SL <sum> <bound> <act>`.
  void def_sum_lower_bound(std::uint32_t sum, std::int64_t bound, Lit activation);
  void def_node(std::uint32_t node);
  void def_edge(std::uint32_t edge, std::uint32_t from, std::uint32_t to,
                std::int64_t weight, std::span<const Lit> guards);
  void def_node_bound(std::uint32_t node, std::int64_t bound, Lit activation);
  void def_objective_linear(std::size_t objective, std::uint32_t sum);
  void def_objective_diff(std::size_t objective, std::uint32_t node);
  /// Tree objective binding: `O <obj> <tree_tokens>`.  A leaf-only token
  /// string degenerates to the legacy linear/diff binding line.
  void def_objective_term(std::size_t objective, std::string_view tree_tokens);
  /// Combinator-axis bound declaration: `OB <obj> <bound> <act>`.
  void def_objective_bound(std::size_t objective, std::int64_t bound,
                           Lit activation);
  void def_rule(Lit head, Lit body, std::span<const Lit> positive_heads);

  // ---- inference steps ----------------------------------------------------
  void input_clause(std::span<const Lit> lits) { clause_step('I', lits); }
  /// Replayed clause installed behind an assumption guard: logs
  /// `G <guard> <lits> 0`, meaning the clause (-guard v lits) holds by
  /// construction.  See the format doc for the purity conditions the
  /// checker enforces.
  void guarded_clause(Lit guard, std::span<const Lit> lits);
  void learnt_clause(std::span<const Lit> lits) { clause_step('L', lits); }
  void delete_clause(std::span<const Lit> lits) { clause_step('D', lits); }
  void theory_clause(const TheoryJustification& just, std::span<const Lit> lits);
  void conclude_unsat(std::span<const Lit> assumptions) {
    clause_step('U', assumptions);
  }
  void sat_marker() { buf_ += "M 0\n"; }
  void feasible_point(std::span<const std::int64_t> point);
  /// Honest label for a proof cut short by a budget trip or interrupt: the
  /// prefix stays verifiable step by step, but no Unsat conclusion (and
  /// hence no completeness claim) can follow.
  void truncation_marker() { buf_ += "X 0\n"; }

  [[nodiscard]] const std::string& text() const noexcept { return buf_; }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return buf_.size(); }

 private:
  void clause_step(char kind, std::span<const Lit> lits);
  void append_lit(Lit l);
  void append_int(std::int64_t v);

  std::string buf_;
};

/// Signed 1-based integer encoding of a literal (DIMACS convention).
[[nodiscard]] inline std::int64_t proof_int(Lit l) noexcept {
  const auto v = static_cast<std::int64_t>(l.var()) + 1;
  return l.positive() ? v : -v;
}

}  // namespace aspmt::asp
