#include "asp/program.hpp"

#include <algorithm>
#include <cassert>

namespace aspmt::asp {

Atom Program::new_atom(std::string name) {
  const Atom a = static_cast<Atom>(names_.size());
  if (name.empty()) name = "x" + std::to_string(a);
  names_.push_back(std::move(name));
  return a;
}

Atom Program::find(std::string_view name) const {
  for (Atom a = 0; a < names_.size(); ++a) {
    if (names_[a] == name) return a;
  }
  return num_atoms();
}

void Program::rule(Atom head, std::vector<BodyLit> body) {
  assert(head < num_atoms());
  rules_.push_back(Rule{head, std::move(body), /*choice=*/false});
}

void Program::choice_rule(Atom head, std::vector<BodyLit> body) {
  assert(head < num_atoms());
  rules_.push_back(Rule{head, std::move(body), /*choice=*/true});
}

void Program::integrity(std::vector<BodyLit> body) {
  constraints_.push_back(std::move(body));
}

Atom Program::weight_node(
    const std::vector<WeightedBodyLit>& body,
    const std::vector<std::int64_t>& suffix_total, std::size_t index,
    std::int64_t needed,
    std::map<std::pair<std::size_t, std::int64_t>, Atom>& memo) {
  if (needed <= 0) return kNodeTrue;
  if (index >= body.size() || suffix_total[index] < needed) return kNodeFalse;
  const auto key = std::make_pair(index, needed);
  if (const auto it = memo.find(key); it != memo.end()) return it->second;

  const WeightedBodyLit& e = body[index];
  const Atom on_sat =
      weight_node(body, suffix_total, index + 1, needed - e.weight, memo);
  const Atom on_unsat = weight_node(body, suffix_total, index + 1, needed, memo);

  // IMPORTANT: the expansion must stay *monotone* in the positive body
  // atoms — the skip branch is unguarded (node :- next), never "not l".
  // A Shannon decision on a positive atom would make support through the
  // remaining elements depend on that atom being false, which is wrong
  // under stable-model semantics when the atom is true but unfounded.
  // Threshold semantics is preserved: node(i, needed) holds iff some subset
  // of the satisfied suffix elements reaches `needed`, which for
  // non-negative weights coincides with the satisfied total reaching it.
  Atom node;
  if (on_sat == kNodeTrue && on_unsat == kNodeTrue) {
    node = kNodeTrue;
  } else if (on_sat == kNodeFalse && on_unsat == kNodeFalse) {
    node = kNodeFalse;
  } else {
    node = new_atom("wsum" + std::to_string(num_atoms()));
    const BodyLit sat = e.lit;
    if (on_sat == kNodeTrue) {
      rule(node, {sat});
    } else if (on_sat != kNodeFalse) {
      rule(node, {sat, pos(on_sat)});
    }
    if (on_unsat == kNodeTrue) {
      rule(node, {});  // unreachable for needed > 0, kept for safety
    } else if (on_unsat != kNodeFalse) {
      rule(node, {pos(on_unsat)});
    }
  }
  memo.emplace(key, node);
  return node;
}

void Program::weight_rule(Atom head, std::int64_t bound,
                          std::vector<WeightedBodyLit> body) {
  assert(head < num_atoms());
  std::erase_if(body, [](const WeightedBodyLit& e) { return e.weight == 0; });
  for (const WeightedBodyLit& e : body) {
    assert(e.weight > 0 && "normalize negative weights before calling");
    assert(e.lit.atom < num_atoms());
    (void)e;
  }
  if (bound <= 0) {
    rule(head, {});
    return;
  }
  // Heavy elements first: smaller BDDs and earlier suffix cut-offs.
  std::sort(body.begin(), body.end(),
            [](const WeightedBodyLit& a, const WeightedBodyLit& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.lit.atom != b.lit.atom) return a.lit.atom < b.lit.atom;
              return a.lit.positive && !b.lit.positive;
            });
  std::vector<std::int64_t> suffix(body.size() + 1, 0);
  for (std::size_t i = body.size(); i-- > 0;) {
    suffix[i] = suffix[i + 1] + body[i].weight;
  }
  std::map<std::pair<std::size_t, std::int64_t>, Atom> memo;
  const Atom root = weight_node(body, suffix, 0, bound, memo);
  if (root == kNodeTrue) {
    rule(head, {});
  } else if (root != kNodeFalse) {
    rule(head, {pos(root)});
  }
  // kNodeFalse: the bound is unreachable — the rule never fires.
}

void Program::cardinality_rule(Atom head, std::int64_t bound,
                               std::vector<BodyLit> body) {
  std::vector<WeightedBodyLit> weighted;
  weighted.reserve(body.size());
  for (const BodyLit& bl : body) weighted.push_back(WeightedBodyLit{bl, 1});
  weight_rule(head, bound, std::move(weighted));
}

void Program::minimize_at(std::int32_t priority,
                          std::vector<WeightedBodyLit> terms) {
  auto& level = minimize_[priority];
  for (const WeightedBodyLit& t : terms) {
    assert(t.weight >= 0 && "normalize negative weights before calling");
    if (t.weight > 0) level.push_back(t);
  }
}

std::span<const WeightedBodyLit> Program::minimize_terms() const noexcept {
  const auto it = minimize_.find(0);
  if (it == minimize_.end()) return {};
  return it->second;
}

}  // namespace aspmt::asp
