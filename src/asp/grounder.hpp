// A non-ground front-end for the ASP substrate ("gringo-lite").
//
// Supports a practical subset of the gringo language:
//
//   node(1..4).                          % facts with integer intervals
//   edge(1,2).  edge(2,3).
//   {colour(X,C)} :- node(X), col(C).    % choice rules with variables
//   reach(X,Y) :- edge(X,Y).             % recursion
//   reach(X,Z) :- reach(X,Y), edge(Y,Z).
//   :- colour(X,C1), colour(X,C2), C1 != C2.   % comparisons
//   ok(X) :- node(X), not bad(X).        % default negation
//
// Terms are symbols (lowercase), integers, variables (leading uppercase or
// '_'), or function terms f(t1,...,tn).  Rules must be *safe*: every
// variable occurs in a positive body literal.  Grounding is naive bottom-up
// over the derivable-atom over-approximation (negative literals ignored for
// derivability), then rules are instantiated and simplified (comparisons
// evaluated, negations of underivable atoms dropped).  The result is a
// ground asp::Program ready for compile().
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "asp/program.hpp"

namespace aspmt::asp {

class GroundError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A (possibly non-ground) term.  The total order used by comparisons is
/// numbers < symbols < variables < functions (then by value/name/args).
struct Term {
  enum class Kind : std::uint8_t { Number, Symbol, Variable, Function };
  Kind kind = Kind::Symbol;
  std::string name;           ///< Symbol / Variable / Function name
  std::int64_t number = 0;    ///< Number
  std::vector<Term> args;     ///< Function arguments

  [[nodiscard]] bool is_ground() const;
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Term& a, const Term& b);
  friend bool operator<(const Term& a, const Term& b);

  static Term symbol(std::string n) { return Term{Kind::Symbol, std::move(n), 0, {}}; }
  static Term number_term(std::int64_t v) { return Term{Kind::Number, {}, v, {}}; }
  static Term variable(std::string n) { return Term{Kind::Variable, std::move(n), 0, {}}; }
  static Term function(std::string n, std::vector<Term> a) {
    return Term{Kind::Function, std::move(n), 0, std::move(a)};
  }
};

/// `predicate(args...)`; the predicate name may also stand alone (arity 0).
struct NgAtom {
  std::string predicate;
  std::vector<Term> args;

  [[nodiscard]] std::string to_string() const;
};

struct NgLiteral {
  NgAtom atom;
  bool positive = true;
};

enum class CompareOp : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

/// Built-in comparison between two terms (evaluated during grounding).
struct NgComparison {
  Term lhs;
  CompareOp op = CompareOp::Eq;
  Term rhs;
};

struct NgRule {
  std::optional<NgAtom> head;  ///< empty = integrity constraint
  bool choice = false;
  std::vector<NgLiteral> body;
  std::vector<NgComparison> comparisons;
};

struct NgProgram {
  std::vector<NgRule> rules;
};

/// Parse the non-ground textual format (throws GroundError on syntax
/// problems; intervals `lo..hi` are expanded in fact heads).
[[nodiscard]] NgProgram parse_nonground(std::string_view text);

struct GroundStats {
  std::size_t ground_atoms = 0;
  std::size_t ground_rules = 0;
  std::size_t iterations = 0;  ///< fixpoint rounds
};

/// Ground a non-ground program into an asp::Program (throws GroundError on
/// unsafe rules).  `stats` is optional.
[[nodiscard]] Program ground(const NgProgram& program, GroundStats* stats = nullptr);

/// Convenience: parse + ground.
[[nodiscard]] Program ground_text(std::string_view text, GroundStats* stats = nullptr);

}  // namespace aspmt::asp
