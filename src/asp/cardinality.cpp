#include "asp/cardinality.hpp"

#include <cassert>

namespace aspmt::asp {
namespace {

/// Sinz (2005) sequential counter for <= k.
void sequential_at_most(Solver& solver, std::span<const Lit> lits, std::uint32_t k) {
  const std::size_t n = lits.size();
  assert(k >= 1 && n > k);
  // s[i][j]: among lits[0..i] at least j+1 are true  (j < k)
  std::vector<std::vector<Lit>> s(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    s[i].resize(k);
    for (std::uint32_t j = 0; j < k; ++j) s[i][j] = Lit::make(solver.new_var(), true);
  }
  // base: lits[0] -> s[0][0]
  solver.add_clause({~lits[0], s[0][0]});
  for (std::size_t i = 1; i + 1 < n; ++i) {
    // carry: s[i-1][j] -> s[i][j]
    for (std::uint32_t j = 0; j < k; ++j) solver.add_clause({~s[i - 1][j], s[i][j]});
    // count: lits[i] -> s[i][0]
    solver.add_clause({~lits[i], s[i][0]});
    // increment: lits[i] & s[i-1][j-1] -> s[i][j]
    for (std::uint32_t j = 1; j < k; ++j) {
      solver.add_clause({~lits[i], ~s[i - 1][j - 1], s[i][j]});
    }
    // overflow forbidden: lits[i] & s[i-1][k-1] -> false
    solver.add_clause({~lits[i], ~s[i - 1][k - 1]});
  }
  solver.add_clause({~lits[n - 1], ~s[n - 2][k - 1]});
}

}  // namespace

void encode_at_most(Solver& solver, std::span<const Lit> lits, std::uint32_t k) {
  if (k >= lits.size()) return;
  if (k == 0) {
    for (const Lit l : lits) solver.add_clause({~l});
    return;
  }
  if (k == 1 && lits.size() <= 6) {
    for (std::size_t i = 0; i < lits.size(); ++i) {
      for (std::size_t j = i + 1; j < lits.size(); ++j) {
        solver.add_clause({~lits[i], ~lits[j]});
      }
    }
    return;
  }
  sequential_at_most(solver, lits, k);
}

void encode_at_least(Solver& solver, std::span<const Lit> lits, std::uint32_t k) {
  if (k == 0) return;
  if (k > lits.size()) {
    solver.add_clause({});  // unsatisfiable
    return;
  }
  if (k == 1) {
    solver.add_clause(std::vector<Lit>(lits.begin(), lits.end()));
    return;
  }
  // at least k of lits  ==  at most (n-k) of ~lits
  std::vector<Lit> negated;
  negated.reserve(lits.size());
  for (const Lit l : lits) negated.push_back(~l);
  encode_at_most(solver, negated, static_cast<std::uint32_t>(lits.size()) - k);
}

void encode_at_most_one(Solver& solver, std::span<const Lit> lits) {
  encode_at_most(solver, lits, 1);
}

void encode_exactly_one(Solver& solver, std::span<const Lit> lits) {
  encode_at_least(solver, lits, 1);
  encode_at_most(solver, lits, 1);
}

}  // namespace aspmt::asp
