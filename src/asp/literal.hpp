// Boolean variables, literals and three-valued truth for the CDNL solver.
//
// Variables are dense 0-based indices.  A literal packs the variable index
// and a sign bit into one 32-bit word (MiniSat style), so literals can index
// watch lists directly.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>

namespace aspmt::asp {

using Var = std::uint32_t;

/// Sentinel for "no variable".
inline constexpr Var kNoVar = 0xffffffffU;

class Lit {
 public:
  constexpr Lit() noexcept = default;

  /// Build a literal from a variable and polarity (true = positive).
  static constexpr Lit make(Var v, bool positive) noexcept {
    return Lit((v << 1) | (positive ? 0U : 1U));
  }

  [[nodiscard]] constexpr Var var() const noexcept { return code_ >> 1; }
  [[nodiscard]] constexpr bool positive() const noexcept { return (code_ & 1U) == 0; }
  [[nodiscard]] constexpr bool negative() const noexcept { return (code_ & 1U) != 0; }

  /// Dense index usable for watch lists / per-literal arrays.
  [[nodiscard]] constexpr std::uint32_t index() const noexcept { return code_; }

  /// Reconstruct from a dense index.
  static constexpr Lit from_index(std::uint32_t idx) noexcept { return Lit(idx); }

  constexpr Lit operator~() const noexcept { return Lit(code_ ^ 1U); }

  friend constexpr bool operator==(Lit a, Lit b) noexcept { return a.code_ == b.code_; }
  friend constexpr bool operator!=(Lit a, Lit b) noexcept { return a.code_ != b.code_; }
  friend constexpr bool operator<(Lit a, Lit b) noexcept { return a.code_ < b.code_; }

 private:
  constexpr explicit Lit(std::uint32_t code) noexcept : code_(code) {}
  std::uint32_t code_ = 0xffffffffU;
};

/// Sentinel literal ("undefined").
inline constexpr Lit kLitUndef{};

/// Three-valued truth.
enum class Lbool : std::uint8_t { False = 0, True = 1, Undef = 2 };

[[nodiscard]] constexpr Lbool lbool_of(bool b) noexcept {
  return b ? Lbool::True : Lbool::False;
}

/// Truth value of a literal given the truth value of its variable.
///
/// Branch-free (this sits in the innermost propagation loop): XOR-ing the
/// sign bit swaps True(1)/False(0) and maps Undef(2) to 2 or 3; the mask
/// `raw & ~(raw >> 1)` collapses 3 back to 2 and leaves 0/1/2 unchanged.
[[nodiscard]] constexpr Lbool lit_value(Lbool var_value, Lit l) noexcept {
  const auto raw = static_cast<std::uint8_t>(
      static_cast<std::uint8_t>(var_value) ^
      static_cast<std::uint8_t>(l.negative()));
  return static_cast<Lbool>(raw & ~(raw >> 1));
}

}  // namespace aspmt::asp

template <>
struct std::hash<aspmt::asp::Lit> {
  std::size_t operator()(aspmt::asp::Lit l) const noexcept {
    return std::hash<std::uint32_t>{}(l.index());
  }
};
