#include "asp/proof.hpp"

namespace aspmt::asp {

void ProofLog::append_int(std::int64_t v) {
  buf_ += ' ';
  buf_ += std::to_string(v);
}

void ProofLog::append_lit(Lit l) { append_int(proof_int(l)); }

void ProofLog::clause_step(char kind, std::span<const Lit> lits) {
  buf_ += kind;
  for (const Lit l : lits) append_lit(l);
  buf_ += " 0\n";
}

void ProofLog::def_sum(std::uint32_t sum,
                       std::span<const std::pair<Lit, std::int64_t>> terms) {
  buf_ += 'S';
  append_int(sum);
  append_int(static_cast<std::int64_t>(terms.size()));
  for (const auto& [guard, weight] : terms) {
    append_lit(guard);
    append_int(weight);
  }
  buf_ += '\n';
}

void ProofLog::def_sum_bound(std::uint32_t sum, std::int64_t bound, Lit activation) {
  buf_ += "SB";
  append_int(sum);
  append_int(bound);
  append_int(activation == kLitUndef ? 0 : proof_int(activation));
  buf_ += '\n';
}

void ProofLog::def_sum_lower_bound(std::uint32_t sum, std::int64_t bound,
                                   Lit activation) {
  buf_ += "SL";
  append_int(sum);
  append_int(bound);
  append_int(activation == kLitUndef ? 0 : proof_int(activation));
  buf_ += '\n';
}

void ProofLog::def_node(std::uint32_t node) {
  buf_ += 'N';
  append_int(node);
  buf_ += '\n';
}

void ProofLog::def_edge(std::uint32_t edge, std::uint32_t from, std::uint32_t to,
                        std::int64_t weight, std::span<const Lit> guards) {
  buf_ += 'E';
  append_int(edge);
  append_int(from);
  append_int(to);
  append_int(weight);
  append_int(static_cast<std::int64_t>(guards.size()));
  for (const Lit g : guards) append_lit(g);
  buf_ += '\n';
}

void ProofLog::def_node_bound(std::uint32_t node, std::int64_t bound,
                              Lit activation) {
  buf_ += "NB";
  append_int(node);
  append_int(bound);
  append_int(activation == kLitUndef ? 0 : proof_int(activation));
  buf_ += '\n';
}

void ProofLog::def_objective_linear(std::size_t objective, std::uint32_t sum) {
  buf_ += 'O';
  append_int(static_cast<std::int64_t>(objective));
  buf_ += " L";
  append_int(sum);
  buf_ += '\n';
}

void ProofLog::def_objective_diff(std::size_t objective, std::uint32_t node) {
  buf_ += 'O';
  append_int(static_cast<std::int64_t>(objective));
  buf_ += " D";
  append_int(node);
  buf_ += '\n';
}

void ProofLog::def_objective_term(std::size_t objective,
                                  std::string_view tree_tokens) {
  buf_ += 'O';
  append_int(static_cast<std::int64_t>(objective));
  buf_ += ' ';
  buf_ += tree_tokens;
  buf_ += '\n';
}

void ProofLog::def_objective_bound(std::size_t objective, std::int64_t bound,
                                   Lit activation) {
  buf_ += "OB";
  append_int(static_cast<std::int64_t>(objective));
  append_int(bound);
  append_int(activation == kLitUndef ? 0 : proof_int(activation));
  buf_ += '\n';
}

void ProofLog::def_rule(Lit head, Lit body, std::span<const Lit> positive_heads) {
  buf_ += "PR";
  append_lit(head);
  append_lit(body);
  append_int(static_cast<std::int64_t>(positive_heads.size()));
  for (const Lit h : positive_heads) append_lit(h);
  buf_ += '\n';
}

void ProofLog::theory_clause(const TheoryJustification& just,
                             std::span<const Lit> lits) {
  buf_ += 'T';
  switch (just.tag) {
    case TheoryTag::DiffCycle: buf_ += " DC"; break;
    case TheoryTag::DiffBound: buf_ += " DB"; break;
    case TheoryTag::LinearBound: buf_ += " LS"; break;
    case TheoryTag::Unfounded: buf_ += " UF"; break;
    case TheoryTag::Dominance: buf_ += " DOM"; break;
    case TheoryTag::LinearLower: buf_ += " LL"; break;
    case TheoryTag::CombinatorBound: buf_ += " CB"; break;
  }
  for (const std::int64_t v : just.payload) append_int(v);
  buf_ += " ;";
  for (const Lit l : lits) append_lit(l);
  buf_ += " 0\n";
}

void ProofLog::guarded_clause(Lit guard, std::span<const Lit> lits) {
  buf_ += 'G';
  append_lit(guard);
  for (const Lit l : lits) append_lit(l);
  buf_ += " 0\n";
}

void ProofLog::feasible_point(std::span<const std::int64_t> point) {
  buf_ += 'F';
  append_int(static_cast<std::int64_t>(point.size()));
  for (const std::int64_t v : point) append_int(v);
  buf_ += " 0\n";
}

}  // namespace aspmt::asp
