// aspmt.hpp — the supported public surface of the library, in one include.
//
//   #include <aspmt.hpp>   (installed under include/aspmt/)
//
// Everything re-exported here is API: covered by tests, documented in
// DESIGN.md, and kept stable across releases.  Headers NOT listed here
// (solver internals, theory propagators, encoder plumbing, pareto archive
// implementations, …) are internal — include them at your own risk; see
// DESIGN.md §11 "Public surface" for the authoritative list.
#pragma once

// -- Problem input ----------------------------------------------------------
// synth::Specification — the system-synthesis problem: tasks, resources,
// mapping options, routing, objective coefficients.
#include "synth/spec.hpp"
// synth::load_specification / save_specification / to_text — the text format
// round-trip used by the CLI, the generator and the checkpointing layer.
#include "synth/specio.hpp"
// synth::validate_implementation — independent feasibility re-check of a
// witness against its specification.
#include "synth/validator.hpp"
// gen::generate — reproducible random specification families (shared bus,
// 2x2/3x3 mesh) for benchmarks and fuzzing.
#include "gen/generator.hpp"

// -- Exploration ------------------------------------------------------------
// dse::CommonOptions — the option block shared by both explorers (budget,
// archive kind, checkpointing, certification, observability hooks).
#include "dse/options.hpp"
// dse::explore — the sequential exact explorer (ExploreOptions adds the
// epsilon-dominance knob); dse::enumerate_witnesses; dse::export_metrics.
#include "dse/explorer.hpp"
// dse::explore_parallel — the parallel portfolio (ParallelExploreOptions
// adds threads/seed/shards; the result embeds an ExploreResult as .base).
#include "dse/parallel_explorer.hpp"
// dse::generate_warm_seeds / WarmStartOptions / SliceScheduler — the hybrid
// heuristic–exact pipeline: validated heuristic seeds and gap-guided slice
// scheduling (DESIGN.md §12).
#include "dse/warmstart.hpp"
// dse::Budget / BudgetLimits / StopReason — resource ceilings and the
// async-signal-safe cancellation token.
#include "dse/budget.hpp"
// dse::Checkpoint / save_checkpoint / load_checkpoint — crash-safe periodic
// snapshots and warm restarts.
#include "dse/checkpoint.hpp"
// dse::reexplore / classify_checkpoint / spec_sections — incremental
// re-exploration on spec deltas: per-section digests, delta classification,
// archive + guarded-clause + slice reuse (DESIGN.md §13).
#include "dse/respec.hpp"
// dse::explore_distributed / shard_objective_space — multi-process
// cube-and-conquer over objective-space bands with a certified merged
// front (DESIGN.md §14).
#include "dse/distributed.hpp"

// -- Service ----------------------------------------------------------------
// dse::Session — one exploration job as a unit of supervision: per-attempt
// budgets, sticky cancellation, checkpoint auto-resume.
#include "dse/session.hpp"
// dse::RetryPolicy / RetrySupervisor — capped exponential backoff with
// deterministic jitter and a per-key circuit breaker (DESIGN.md §15).
#include "dse/supervise.hpp"
// serve::Server / ServerOptions — the exploration service core: admission
// control, overload shedding, crash-safe job journal, graceful drain.
#include "serve/server.hpp"
// serve::SocketEndpoint / serve::Client — the unix-socket transport and its
// blocking client (line-delimited JSON; grammar in DESIGN.md §15).
#include "serve/endpoint.hpp"
#include "serve/client.hpp"

// -- Certification ----------------------------------------------------------
// cert::certify_front — replay a run's proof stream and witness set through
// the independent checker; exit code of record for certified runs.
#include "cert/certify.hpp"

// -- Observability ----------------------------------------------------------
// obs::Event / EventKind — the typed event taxonomy (DESIGN.md §11).
#include "obs/events.hpp"
// obs::EventSink / MultiSink — where collected events go; implement this to
// build custom exporters.
#include "obs/sink.hpp"
// obs::MetricsRegistry — named counters / gauges / histograms with a JSON
// snapshot (CommonOptions::metrics).
#include "obs/metrics.hpp"
// obs::NdjsonExporter / ChromeTraceExporter / ProgressMeter — stock sinks:
// event log, Perfetto-loadable trace, live status line.
#include "obs/exporters.hpp"
