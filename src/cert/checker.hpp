// Solver-independent proof checker for the `p aspmt 1` stream emitted by
// asp::ProofLog.
//
// The checker shares no code with the solver: it re-parses the trace into
// its own clause database with its own watched-literal unit propagation,
// verifies every learnt clause by RUP (asserting the negation and
// propagating to a conflict), re-derives every theory lemma from the
// declared theory data alone (sum/edge/bound/rule/objective declarations),
// and discharges every Unsat conclusion by asserting its assumptions and
// propagating.  A proof that survives makes the solver's Unsat answers —
// and with them the exactness of an explored Pareto front — independently
// machine-checked facts.
//
// Trust boundary: declarations (I/S/SB/SL/N/E/NB/O/PR) are axioms of the
// constraint system — they assert what problem was solved, not how.  The
// certification layer (cert/certify.hpp) closes the remaining gap on the
// model side by validating every feasible point's witness against the
// specification with synth::Validator.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aspmt::cert {

struct CheckOptions {
  /// Demand a global (assumption-free) Unsat conclusion in the stream —
  /// the completeness certificate of an exhaustive exploration.
  bool require_global_unsat = false;
  /// Accept `F` steps as evidence of feasibility for dominance lemmas.
  /// The certification layer disables this and supplies `feasible_points`
  /// instead, so only externally validated witnesses count.
  bool trust_feasible_steps = true;
  /// Externally certified feasible objective vectors.  When
  /// trust_feasible_steps is false these are the only admissible dominance
  /// sources, and every `F` step must match one of them.
  std::vector<std::vector<std::int64_t>> feasible_points;
  /// When >= 0, extract *shard boxes* on this (linear) objective: every
  /// verified Unsat conclusion whose assumptions are all pure bound
  /// activations on the objective's sum contributes the interval
  /// [max SL floor, min SB ceiling] it proves empty modulo dominance.  See
  /// CheckResult::shard_boxes and cert::certify_merged.
  std::int64_t shard_objective = -1;
};

struct CheckResult {
  bool ok = false;
  /// The stream contains a verified assumption-free Unsat conclusion.
  bool concluded_global_unsat = false;
  /// The stream carries an `X` truncation marker: a budget trip or
  /// interrupt cut the session short.  The replayed prefix is still sound,
  /// but completeness claims must not be made from this stream.
  bool truncated = false;
  std::size_t input_clauses = 0;
  /// Guarded replay axioms (`G` steps) admitted after the purity check:
  /// each guard variable is fresh w.r.t. every axiom/declaration and occurs
  /// only negatively in the installed clauses, so any model of the original
  /// system extends with guard=false and Unsat conclusions carry over.
  std::size_t guarded_clauses = 0;
  std::size_t learnt_clauses = 0;
  std::size_t theory_lemmas = 0;
  std::size_t deletions = 0;
  std::size_t conclusions = 0;
  std::size_t feasible_points = 0;
  /// With CheckOptions::shard_objective set: closed intervals [lo, hi] of
  /// the shard objective proven empty modulo dominance — each comes from a
  /// verified Unsat conclusion whose assumptions are *pure* box activations
  /// (positive literals that occur in no input clause, sum term, edge guard,
  /// rule, or replay step, and activate bounds only on the shard objective's
  /// sum).  Purity makes the cross-shard model-extension argument sound: a
  /// feasible design point inside the box extends to a model of the declared
  /// system with the box activations true and every other auxiliary variable
  /// false, so the verified Unsat means every such point is weakly dominated
  /// by a certified feasible point.  INT64_MIN/INT64_MAX encode unbounded
  /// ends; an assumption-free global Unsat contributes the full line.
  std::vector<std::array<std::int64_t, 2>> shard_boxes;
  /// A sum/node bound declaration with no (or a negative) activation literal
  /// was seen.  Such a bound holds unconditionally, so the model-extension
  /// argument above cannot switch it off — merged certification rejects
  /// shard streams carrying one.
  bool unsafe_bounds = false;
  /// First failure, with its 1-based line number; empty when ok.
  std::string error;
};

/// Replay and verify a complete proof stream.
[[nodiscard]] CheckResult check_proof(std::string_view proof,
                                      const CheckOptions& options = {});

}  // namespace aspmt::cert
