#include "cert/certify.hpp"

#include <algorithm>

#include "synth/validator.hpp"

namespace aspmt::cert {

CertifyResult certify_front(
    const synth::Specification& spec,
    std::span<const std::pair<pareto::Vec, synth::Implementation>> discoveries,
    std::span<const pareto::Vec> front, std::string_view proof) {
  CertifyResult result;

  // 1. Every discovery needs an independently validated witness whose
  //    recomputed objectives equal the recorded vector.
  CheckOptions copts;
  copts.require_global_unsat = true;
  copts.trust_feasible_steps = false;
  copts.feasible_points.reserve(discoveries.size());
  for (const auto& [point, impl] : discoveries) {
    const std::string why = synth::validate_implementation(spec, impl);
    if (!why.empty()) {
      result.error =
          "witness for " + pareto::to_string(point) + " invalid: " + why;
      return result;
    }
    if (synth::recompute_objectives(spec, impl) != point) {
      result.error = "witness objectives disagree with the recorded point " +
                     pareto::to_string(point);
      return result;
    }
    ++result.witnesses_validated;
    copts.feasible_points.push_back(point);
  }

  // 2. The proof must verify with only those points as dominance sources and
  //    must close with a global Unsat conclusion.
  result.check = check_proof(proof, copts);
  if (!result.check.ok) {
    result.error = "proof check failed: " + result.check.error;
    return result;
  }

  // 3. The reported front must be exactly the Pareto-minimal subset of the
  //    validated discoveries.
  std::vector<pareto::Vec> points;
  points.reserve(discoveries.size());
  for (const auto& [point, impl] : discoveries) points.push_back(point);
  std::vector<pareto::Vec> minimal = pareto::non_dominated_filter(std::move(points));
  std::vector<pareto::Vec> reported(front.begin(), front.end());
  std::sort(reported.begin(), reported.end());
  if (reported != minimal) {
    result.error = "reported front differs from the minimal validated set";
    return result;
  }

  result.certified = true;
  return result;
}

}  // namespace aspmt::cert
