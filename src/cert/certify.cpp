#include "cert/certify.hpp"

#include <algorithm>
#include <array>
#include <charconv>

#include "synth/validator.hpp"

namespace aspmt::cert {

namespace {

/// The constraint system a proof stream claims to solve: the subsequence of
/// its I/S/N/E/O/PR lines, verbatim.  Bound declarations (SB/SL/NB), replay
/// axioms (G) and all derivation steps are excluded — those legitimately
/// differ across shards of one distributed run; the system itself must not.
std::string declaration_core(std::string_view proof) {
  std::string core;
  std::size_t pos = 0;
  while (pos < proof.size()) {
    std::size_t nl = proof.find('\n', pos);
    if (nl == std::string_view::npos) nl = proof.size();
    const std::string_view line = proof.substr(pos, nl - pos);
    pos = nl + 1;
    const std::size_t sp = line.find(' ');
    const std::string_view head = line.substr(0, sp);
    if (head == "I" || head == "S" || head == "N" || head == "E" ||
        head == "O" || head == "PR") {
      core.append(line);
      core.push_back('\n');
    }
  }
  return core;
}

bool parse_i64(std::string_view token, std::int64_t& out) {
  const char* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), end, out);
  return ec == std::errc{} && ptr == end;
}

std::string_view take_line(std::string_view& rest) {
  const std::size_t nl = rest.find('\n');
  const std::string_view line =
      nl == std::string_view::npos ? rest : rest.substr(0, nl);
  rest = nl == std::string_view::npos ? std::string_view{} : rest.substr(nl + 1);
  return line;
}

std::string_view take_token(std::string_view& rest) {
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  const std::size_t sp = rest.find(' ');
  const std::string_view tok =
      sp == std::string_view::npos ? rest : rest.substr(0, sp);
  rest = sp == std::string_view::npos ? std::string_view{} : rest.substr(sp + 1);
  return tok;
}

}  // namespace

CertifyResult certify_front(
    const synth::Specification& spec,
    std::span<const std::pair<pareto::Vec, synth::Implementation>> discoveries,
    std::span<const pareto::Vec> front, std::string_view proof) {
  CertifyResult result;

  // 1. Every discovery needs an independently validated witness whose
  //    recomputed objectives equal the recorded vector.
  CheckOptions copts;
  copts.require_global_unsat = true;
  copts.trust_feasible_steps = false;
  copts.feasible_points.reserve(discoveries.size());
  for (const auto& [point, impl] : discoveries) {
    const std::string why = synth::validate_implementation(spec, impl);
    if (!why.empty()) {
      result.error =
          "witness for " + pareto::to_string(point) + " invalid: " + why;
      return result;
    }
    if (synth::recompute_objectives(spec, impl) != point) {
      result.error = "witness objectives disagree with the recorded point " +
                     pareto::to_string(point);
      return result;
    }
    ++result.witnesses_validated;
    copts.feasible_points.push_back(point);
  }

  // 2. The proof must verify with only those points as dominance sources and
  //    must close with a global Unsat conclusion.
  result.check = check_proof(proof, copts);
  if (!result.check.ok) {
    result.error = "proof check failed: " + result.check.error;
    return result;
  }

  // 3. The reported front must be exactly the Pareto-minimal subset of the
  //    validated discoveries.
  std::vector<pareto::Vec> points;
  points.reserve(discoveries.size());
  for (const auto& [point, impl] : discoveries) points.push_back(point);
  std::vector<pareto::Vec> minimal = pareto::non_dominated_filter(std::move(points));
  std::vector<pareto::Vec> reported(front.begin(), front.end());
  std::sort(reported.begin(), reported.end());
  if (reported != minimal) {
    result.error = "reported front differs from the minimal validated set";
    return result;
  }

  result.certified = true;
  return result;
}

MergedCertifyResult certify_merged(
    const synth::Specification& spec,
    std::span<const std::pair<pareto::Vec, synth::Implementation>> discoveries,
    std::span<const pareto::Vec> front, std::span<const ShardProof> shards,
    std::size_t shard_objective) {
  MergedCertifyResult result;
  if (shards.empty()) {
    result.error = "no shard proofs to merge";
    return result;
  }

  // 1. The union of all shards' discoveries must validate; only validated
  //    points are admissible dominance sources in *any* shard's stream.
  CheckOptions copts;
  copts.require_global_unsat = false;
  copts.trust_feasible_steps = false;
  copts.shard_objective = static_cast<std::int64_t>(shard_objective);
  copts.feasible_points.reserve(discoveries.size());
  for (const auto& [point, impl] : discoveries) {
    const std::string why = synth::validate_implementation(spec, impl);
    if (!why.empty()) {
      result.error =
          "witness for " + pareto::to_string(point) + " invalid: " + why;
      return result;
    }
    if (synth::recompute_objectives(spec, impl) != point) {
      result.error = "witness objectives disagree with the recorded point " +
                     pareto::to_string(point);
      return result;
    }
    ++result.witnesses_validated;
    copts.feasible_points.push_back(point);
  }

  // 2. Every shard's stream must verify, stay untruncated, declare no
  //    unconditional bound, prove a box containing its claimed band, and
  //    solve byte-for-byte the same constraint system as shard 0.
  std::string core;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardProof& shard = shards[i];
    const std::string tag = "shard " + std::to_string(i);
    CheckResult check = check_proof(shard.proof, copts);
    if (!check.ok) {
      result.error = tag + " proof check failed: " + check.error;
      result.checks.push_back(std::move(check));
      return result;
    }
    if (check.truncated) {
      result.error = tag + " proof is truncated; its band is not proven exhausted";
      result.checks.push_back(std::move(check));
      return result;
    }
    if (check.unsafe_bounds) {
      result.error = tag +
                     " declares an unconditional bound, breaking the "
                     "cross-shard model-extension argument";
      result.checks.push_back(std::move(check));
      return result;
    }
    bool covered = false;
    for (const std::array<std::int64_t, 2>& box : check.shard_boxes) {
      if (box[0] <= shard.lo && box[1] >= shard.hi) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      result.error = tag + " proves no box covering its claimed band [" +
                     std::to_string(shard.lo) + ", " + std::to_string(shard.hi) +
                     "]";
      result.checks.push_back(std::move(check));
      return result;
    }
    std::string shard_core = declaration_core(shard.proof);
    if (i == 0) {
      core = std::move(shard_core);
    } else if (shard_core != core) {
      result.error = tag + " solved a different constraint system than shard 0";
      result.checks.push_back(std::move(check));
      return result;
    }
    result.checks.push_back(std::move(check));
    ++result.shards_checked;
  }

  // 3. The claimed bands must tile the whole objective line exactly — sorted,
  //    gap-free, overlap-free, open at both ends.
  std::vector<std::array<std::int64_t, 2>> bands;
  bands.reserve(shards.size());
  for (const ShardProof& s : shards) bands.push_back({s.lo, s.hi});
  std::sort(bands.begin(), bands.end());
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  if (bands.front()[0] != kMin) {
    result.error = "shard bands leave the objective unbounded-below end uncovered";
    return result;
  }
  for (std::size_t i = 0; i < bands.size(); ++i) {
    if (bands[i][0] > bands[i][1]) {
      result.error = "shard band " + std::to_string(bands[i][0]) + " > " +
                     std::to_string(bands[i][1]) + " is empty";
      return result;
    }
    if (i + 1 < bands.size() && bands[i + 1][0] != bands[i][1] + 1) {
      result.error = bands[i + 1][0] <= bands[i][1]
                         ? "shard bands overlap"
                         : "shard bands leave a gap after " +
                               std::to_string(bands[i][1]);
      return result;
    }
  }
  if (bands.back()[1] != kMax) {
    result.error = "shard bands leave the objective unbounded-above end uncovered";
    return result;
  }

  // 4. The merged front must be exactly the Pareto-minimal subset of the
  //    validated union.
  std::vector<pareto::Vec> points;
  points.reserve(discoveries.size());
  for (const auto& [point, impl] : discoveries) points.push_back(point);
  std::vector<pareto::Vec> minimal =
      pareto::non_dominated_filter(std::move(points));
  std::vector<pareto::Vec> reported(front.begin(), front.end());
  std::sort(reported.begin(), reported.end());
  if (reported != minimal) {
    result.error = "merged front differs from the minimal validated union";
    return result;
  }

  result.certified = true;
  return result;
}

std::string merged_proof_to_text(std::size_t objective,
                                 std::span<const ShardProof> shards) {
  std::string out{kMergedProofHeader};
  out += "\nobjective ";
  out += std::to_string(objective);
  out += '\n';
  for (const ShardProof& s : shards) {
    out += "shard ";
    out += std::to_string(s.lo);
    out += ' ';
    out += std::to_string(s.hi);
    out += ' ';
    out += std::to_string(s.proof.size());
    out += '\n';
    out += s.proof;
    out += '\n';
  }
  return out;
}

std::string parse_merged_proof(std::string_view text, std::size_t& objective,
                               std::vector<ShardProof>& shards) {
  shards.clear();
  std::string_view rest = text;
  if (take_line(rest) != kMergedProofHeader) {
    return "missing merged-proof header";
  }
  std::string_view obj_line = take_line(rest);
  if (take_token(obj_line) != "objective") return "missing objective line";
  std::int64_t obj = -1;
  if (!parse_i64(take_token(obj_line), obj) || obj < 0) {
    return "malformed objective index";
  }
  objective = static_cast<std::size_t>(obj);
  while (!rest.empty()) {
    std::string_view line = take_line(rest);
    if (line.empty()) continue;
    if (take_token(line) != "shard") return "expected a shard block";
    ShardProof shard;
    std::int64_t nbytes = -1;
    if (!parse_i64(take_token(line), shard.lo) ||
        !parse_i64(take_token(line), shard.hi) ||
        !parse_i64(take_token(line), nbytes) || nbytes < 0) {
      return "malformed shard block header";
    }
    if (static_cast<std::size_t>(nbytes) > rest.size()) {
      return "truncated shard payload";
    }
    shard.proof.assign(rest.substr(0, static_cast<std::size_t>(nbytes)));
    rest.remove_prefix(static_cast<std::size_t>(nbytes));
    if (!rest.empty() && rest.front() == '\n') rest.remove_prefix(1);
    shards.push_back(std::move(shard));
  }
  if (shards.empty()) return "merged proof carries no shards";
  return {};
}

}  // namespace aspmt::cert
