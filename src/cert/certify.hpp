// Front certification: combine witness validation with proof checking so a
// whole exploration result becomes independently verified.
//
// An exploration run is certified exact when
//   1. every point it ever discovered carries a witness implementation that
//      synth::Validator accepts, with objectives matching the recorded
//      vector (so each F step of the proof denotes a real design point);
//   2. the proof stream checks out end to end (cert::check_proof) with only
//      those validated points admitted as dominance sources, and contains a
//      verified assumption-free Unsat conclusion — no model escapes the
//      dominance-blocked regions, i.e. everything feasible is weakly
//      dominated by a validated point;
//   3. the reported front equals the Pareto-minimal subset of the validated
//      discoveries.
// Together these imply the reported front is exactly the Pareto front of
// the declared constraint system, trusting only the encoding declarations
// (which the validator cross-checks on the model side).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cert/checker.hpp"
#include "pareto/point.hpp"
#include "synth/implementation.hpp"
#include "synth/spec.hpp"

namespace aspmt::cert {

struct CertifyResult {
  bool certified = false;
  std::size_t witnesses_validated = 0;
  CheckResult check;
  /// Empty when certified; first failing condition otherwise.
  std::string error;
};

/// Certify one exploration run.  `discoveries` must pair every objective
/// vector the run ever inserted into its archive with the witness
/// implementation captured for it; `front` is the reported final front.
[[nodiscard]] CertifyResult certify_front(
    const synth::Specification& spec,
    std::span<const std::pair<pareto::Vec, synth::Implementation>> discoveries,
    std::span<const pareto::Vec> front, std::string_view proof);

// ---------------------------------------------------------------------------
// Merged certification for distributed (sharded) runs — dse/distributed.hpp.
//
// A distributed run splits one objective's range into K disjoint bands
// ("boxes"), explores each band with an independent portfolio under
// activation-guarded band bounds, and merges the per-band fronts.  Each band
// hands up a raw `p aspmt 1` stream whose terminating Unsat is concluded
// under exactly its band activations.  certify_merged turns the collection
// into one verified exactness claim through four checks:
//
//   1. witness validation — the union of all shards' discoveries validates,
//      and only those points are admitted as dominance sources anywhere;
//   2. per-shard proof check with shard-box extraction
//      (CheckOptions::shard_objective): the checker-verified box of each
//      stream must contain the claimed band, the stream must be untruncated
//      and carry no unconditional bound (CheckResult::unsafe_bounds), and
//      every stream's declaration core (the I/S/N/E/O/PR lines — the
//      constraint system itself) must be byte-identical to shard 0's, so all
//      shards provably solved the same problem;
//   3. coverage — the claimed bands, sorted, tile (-inf, +inf) exactly: the
//      first is open below, each next band starts one past its predecessor's
//      end, the last is open above.  No gap escapes every shard's Unsat;
//   4. the merged front equals the Pareto-minimal subset of the validated
//      union.
//
// Soundness of the cross-shard argument: a feasible point inside a band
// extends to a model of the declared system with that band's activations
// true and every other auxiliary variable false (box purity, verified by the
// checker), so the band's verified Unsat means every feasible point in the
// band is weakly dominated by some validated point — possibly one discovered
// by a *different* shard, which is why the feasible set is the union.
// ---------------------------------------------------------------------------

/// One shard of a distributed run: the claimed closed band [lo, hi] on the
/// shard objective (INT64_MIN/INT64_MAX = unbounded end) and the raw
/// `p aspmt 1` stream its portfolio produced under the band activations.
struct ShardProof {
  std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  std::string proof;
};

struct MergedCertifyResult {
  bool certified = false;
  std::size_t witnesses_validated = 0;
  std::size_t shards_checked = 0;
  /// Per-shard check outcomes, in input order, up to the first failure.
  std::vector<CheckResult> checks;
  /// Empty when certified; first failing condition otherwise.
  std::string error;
};

/// Certify a distributed run.  `discoveries` is the union of every shard's
/// discoveries (each with its witness), `front` the merged front,
/// `shard_objective` the banded objective's index in the spec's objective
/// order.
[[nodiscard]] MergedCertifyResult certify_merged(
    const synth::Specification& spec,
    std::span<const std::pair<pareto::Vec, synth::Implementation>> discoveries,
    std::span<const pareto::Vec> front, std::span<const ShardProof> shards,
    std::size_t shard_objective);

/// First line of the merged-proof container format.
inline constexpr std::string_view kMergedProofHeader = "p aspmt-merged 1";

/// Serialize shard proofs into the self-contained `p aspmt-merged 1`
/// container:
///   p aspmt-merged 1
///   objective <k>
///   shard <lo> <hi> <nbytes>
///   <nbytes raw proof bytes>
///   ... (one shard block per shard)
/// `aspmt_check` accepts this container next to plain `p aspmt 1` streams.
[[nodiscard]] std::string merged_proof_to_text(std::size_t objective,
                                               std::span<const ShardProof> shards);

/// Parse merged_proof_to_text output.  Returns "" on success, a diagnostic
/// otherwise.
[[nodiscard]] std::string parse_merged_proof(std::string_view text,
                                             std::size_t& objective,
                                             std::vector<ShardProof>& shards);

}  // namespace aspmt::cert
