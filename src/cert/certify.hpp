// Front certification: combine witness validation with proof checking so a
// whole exploration result becomes independently verified.
//
// An exploration run is certified exact when
//   1. every point it ever discovered carries a witness implementation that
//      synth::Validator accepts, with objectives matching the recorded
//      vector (so each F step of the proof denotes a real design point);
//   2. the proof stream checks out end to end (cert::check_proof) with only
//      those validated points admitted as dominance sources, and contains a
//      verified assumption-free Unsat conclusion — no model escapes the
//      dominance-blocked regions, i.e. everything feasible is weakly
//      dominated by a validated point;
//   3. the reported front equals the Pareto-minimal subset of the validated
//      discoveries.
// Together these imply the reported front is exactly the Pareto front of
// the declared constraint system, trusting only the encoding declarations
// (which the validator cross-checks on the model side).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cert/checker.hpp"
#include "pareto/point.hpp"
#include "synth/implementation.hpp"
#include "synth/spec.hpp"

namespace aspmt::cert {

struct CertifyResult {
  bool certified = false;
  std::size_t witnesses_validated = 0;
  CheckResult check;
  /// Empty when certified; first failing condition otherwise.
  std::string error;
};

/// Certify one exploration run.  `discoveries` must pair every objective
/// vector the run ever inserted into its archive with the witness
/// implementation captured for it; `front` is the reported final front.
[[nodiscard]] CertifyResult certify_front(
    const synth::Specification& spec,
    std::span<const std::pair<pareto::Vec, synth::Implementation>> discoveries,
    std::span<const pareto::Vec> front, std::string_view proof);

}  // namespace aspmt::cert
