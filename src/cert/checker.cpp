#include "cert/checker.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>

namespace aspmt::cert {
namespace {

using Lits = std::vector<std::int64_t>;

// Sort by variable, negative phase first — makes duplicates and
// complementary pairs adjacent and gives a canonical deletion key.
struct LitLess {
  bool operator()(std::int64_t a, std::int64_t b) const noexcept {
    const std::int64_t va = std::abs(a);
    const std::int64_t vb = std::abs(b);
    if (va != vb) return va < vb;
    return a < b;
  }
};

void canonicalize(Lits& lits) {
  std::sort(lits.begin(), lits.end(), LitLess{});
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
}

[[nodiscard]] bool is_tautology(const Lits& lits) {
  for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
    if (lits[i] == -lits[i + 1]) return true;
  }
  return false;
}

/// Whitespace tokenizer over one proof line.
class Line {
 public:
  Line(const char* begin, const char* end) : p_(begin), end_(end) {}

  bool word(std::string_view& out) {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t')) ++p_;
    if (p_ == end_) return false;
    const char* start = p_;
    while (p_ != end_ && *p_ != ' ' && *p_ != '\t') ++p_;
    out = std::string_view(start, static_cast<std::size_t>(p_ - start));
    return true;
  }

  bool integer(std::int64_t& out) {
    std::string_view w;
    if (!word(w)) return false;
    const auto res = std::from_chars(w.data(), w.data() + w.size(), out);
    return res.ec == std::errc{} && res.ptr == w.data() + w.size();
  }

 private:
  const char* p_;
  const char* end_;
};

struct Edge {
  std::int64_t from = 0;
  std::int64_t to = 0;
  std::int64_t weight = 0;
  Lits guards;  // all must be true for the edge to apply
};

struct Rule {
  std::int64_t head = 0;
  std::int64_t body = 0;
  Lits pos_heads;  // head literals of the positive body atoms
};

/// One objective binding as declared by an O line: a leaf ('L' sum, 'D'
/// node) or a combinator ('X' lex with caps, 'M' minmax, 'W' weighted with
/// weights, 'V' scenario-worst) over such trees.  kind 0 marks an axis whose
/// binding was never declared.
struct ObjTree {
  char kind = 0;
  std::int64_t id = 0;                // leaf theory id
  std::vector<std::int64_t> params;   // caps ('X') or weights ('W')
  std::vector<ObjTree> children;
};

/// The whole verification state: clause database with watched-literal unit
/// propagation plus the declared theory tables.
class Checker {
 public:
  explicit Checker(const CheckOptions& options) : opts_(options) {}

  CheckResult run(std::string_view proof);

 private:
  // ---- unit propagation ---------------------------------------------------

  [[nodiscard]] static std::size_t lit_index(std::int64_t l) noexcept {
    return 2 * static_cast<std::size_t>(std::abs(l) - 1) + (l < 0 ? 1 : 0);
  }

  void ensure_var(std::int64_t l) {
    const auto v = static_cast<std::size_t>(std::abs(l));
    if (assign_.size() < v + 1) assign_.resize(v + 1, 0);
    if (watch_.size() < 2 * v) watch_.resize(2 * v);
  }

  [[nodiscard]] int value(std::int64_t l) const noexcept {
    const int a = assign_[static_cast<std::size_t>(std::abs(l))];
    return l < 0 ? -a : a;
  }

  void assign(std::int64_t l) {
    assign_[static_cast<std::size_t>(std::abs(l))] =
        static_cast<std::int8_t>(l < 0 ? -1 : 1);
    trail_.push_back(l);
  }

  /// False iff `l` is already false.
  bool enqueue(std::int64_t l) {
    const int v = value(l);
    if (v == 1) return true;
    if (v == -1) return false;
    assign(l);
    return true;
  }

  bool propagate() {
    while (qhead_ < trail_.size()) {
      const std::int64_t p = trail_[qhead_++];
      auto& wl = watch_[lit_index(-p)];
      std::size_t out = 0;
      for (std::size_t i = 0; i < wl.size(); ++i) {
        const std::uint32_t ci = wl[i];
        if (!active_[ci]) continue;  // deleted: lazily drop from the list
        Lits& ls = clause_lits_[ci];
        if (ls[0] == -p) std::swap(ls[0], ls[1]);
        if (value(ls[0]) == 1) {
          wl[out++] = ci;
          continue;
        }
        bool moved = false;
        for (std::size_t k = 2; k < ls.size(); ++k) {
          if (value(ls[k]) != -1) {
            std::swap(ls[1], ls[k]);
            watch_[lit_index(ls[1])].push_back(ci);
            moved = true;
            break;
          }
        }
        if (moved) continue;
        wl[out++] = ci;  // clause stays unit/conflicting on ls[0]
        if (value(ls[0]) == -1) {
          for (++i; i < wl.size(); ++i) wl[out++] = wl[i];
          wl.resize(out);
          return false;
        }
        assign(ls[0]);
      }
      wl.resize(out);
    }
    return true;
  }

  void undo_to(std::size_t save) {
    while (trail_.size() > save) {
      assign_[static_cast<std::size_t>(std::abs(trail_.back()))] = 0;
      trail_.pop_back();
    }
    qhead_ = std::min(qhead_, save);
  }

  /// RUP: asserting the negation of every clause literal propagates to a
  /// conflict (or the clause is already satisfied/tautological at root).
  [[nodiscard]] bool rup(const Lits& clause) {
    if (root_conflict_) return true;
    const std::size_t save = trail_.size();
    bool conflict = false;
    bool satisfied = false;
    for (const std::int64_t l : clause) {
      ensure_var(l);
      const int v = value(l);
      if (v == 1) {  // root unit (or a complementary clause literal)
        satisfied = true;
        break;
      }
      if (v == -1) continue;
      assign(-l);
    }
    if (!satisfied) conflict = !propagate();
    undo_to(save);
    return conflict || satisfied;
  }

  /// The clause set is contradictory once all `assumptions` are asserted.
  [[nodiscard]] bool refutes_assumptions(const Lits& assumptions) {
    if (root_conflict_) return true;
    const std::size_t save = trail_.size();
    bool conflict = false;
    for (const std::int64_t a : assumptions) {
      ensure_var(a);
      if (!enqueue(a)) {
        conflict = true;
        break;
      }
    }
    if (!conflict) conflict = !propagate();
    undo_to(save);
    return conflict;
  }

  /// Add a verified/axiomatic clause to the database and restore the root
  /// fixpoint.  `lits` must be canonical.
  void install(Lits lits) {
    if (root_conflict_ || is_tautology(lits)) return;
    for (const std::int64_t l : lits) ensure_var(l);
    if (lits.empty()) {
      root_conflict_ = true;
      return;
    }
    const std::uint32_t id = static_cast<std::uint32_t>(clause_lits_.size());
    by_lits_[lits].push_back(id);
    // Pick two non-false watches; fewer mean the clause is unit or false
    // under the root assignment right away.
    std::size_t nonfalse = 0;
    for (std::size_t i = 0; i < lits.size() && nonfalse < 2; ++i) {
      if (value(lits[i]) != -1) std::swap(lits[nonfalse++], lits[i]);
    }
    const bool watchable = nonfalse >= 2;
    if (!watchable) {
      if (nonfalse == 0) {
        root_conflict_ = true;
      } else if (!enqueue(lits[0]) || !propagate()) {
        root_conflict_ = true;
      }
    }
    clause_lits_.push_back(std::move(lits));
    active_.push_back(watchable);  // unit/false clauses live on as root facts
    if (watchable) {
      watch_[lit_index(clause_lits_[id][0])].push_back(id);
      watch_[lit_index(clause_lits_[id][1])].push_back(id);
    }
  }

  // ---- theory re-derivation ----------------------------------------------

  /// Longest origin distances over the edges whose guards are all in `G`
  /// (nodes are implicitly >= 0).  Bellman-Ford; `cycle` reports a positive
  /// cycle (distances divergent, any bound claim holds vacuously).
  void longest_paths(const std::set<std::int64_t>& G, std::vector<std::int64_t>& dist,
                     bool& cycle) const {
    dist.assign(static_cast<std::size_t>(num_nodes_), 0);
    cycle = false;
    std::vector<const Edge*> live;
    for (const Edge& e : edges_) {
      const bool on = std::all_of(e.guards.begin(), e.guards.end(),
                                  [&](std::int64_t g) { return G.count(g) != 0; });
      if (on) live.push_back(&e);
    }
    bool changed = true;
    for (std::int64_t round = 0; round <= num_nodes_ && changed; ++round) {
      changed = false;
      for (const Edge* e : live) {
        const std::int64_t nd = dist[static_cast<std::size_t>(e->from)] + e->weight;
        if (nd > dist[static_cast<std::size_t>(e->to)]) {
          dist[static_cast<std::size_t>(e->to)] = nd;
          changed = true;
        }
      }
    }
    cycle = changed;  // still relaxing after |V| rounds
  }

  [[nodiscard]] std::int64_t clause_weight_in_sum(
      std::size_t sum, const std::set<std::int64_t>& clause_set) const {
    std::int64_t total = 0;
    for (const auto& [guard, weight] : sums_[sum]) {
      if (clause_set.count(-guard) != 0) total += weight;
    }
    return total;
  }

  /// Weight forfeited when every guard occurring *positively* in the clause
  /// is assumed false (the LL lemma shape: at least one of them must hold).
  [[nodiscard]] std::int64_t clause_weight_forfeited(
      std::size_t sum, const std::set<std::int64_t>& clause_set) const {
    std::int64_t total = 0;
    for (const auto& [guard, weight] : sums_[sum]) {
      if (clause_set.count(guard) != 0) total += weight;
    }
    return total;
  }

  [[nodiscard]] std::int64_t sum_total(std::size_t sum) const {
    std::int64_t total = 0;
    for (const auto& [guard, weight] : sums_[sum]) total += weight;
    return total;
  }

  [[nodiscard]] bool some_feasible_leq(const std::vector<std::int64_t>& p) const {
    const auto& sources =
        opts_.trust_feasible_steps ? feasible_ : opts_.feasible_points;
    for (const auto& q : sources) {
      if (q.size() != p.size()) continue;
      bool leq = true;
      for (std::size_t i = 0; i < q.size() && leq; ++i) leq = q[i] <= p[i];
      if (leq) return true;
    }
    return false;
  }

  /// Re-derive a lower bound of an objective tree under the assumption that
  /// every literal of the (negated) clause holds: leaf bounds come from the
  /// declared sum/edge tables exactly as in the LS/DB lemmas, combinators
  /// fold them monotonically (max for minmax/worst, weighted sum, clamped
  /// big-endian packing for lex — the same arithmetic the solver binds).  A
  /// positive cycle in a difference leaf makes its bound vacuously infinite.
  /// Returns an empty string and writes `out` on success.
  [[nodiscard]] std::string tree_lower_bound(
      const ObjTree& t, const std::set<std::int64_t>& G,
      const std::set<std::int64_t>& clause_set, std::int64_t& out) const {
    constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
    switch (t.kind) {
      case 'L': {
        if (t.id < 0 || static_cast<std::size_t>(t.id) >= sums_.size()) {
          return "unknown sum";
        }
        out = clause_weight_in_sum(static_cast<std::size_t>(t.id), clause_set);
        return {};
      }
      case 'D': {
        if (t.id < 0 || t.id >= num_nodes_) return "unknown node";
        std::vector<std::int64_t> dist;
        bool cycle = false;
        longest_paths(G, dist, cycle);
        out = cycle ? kMax : dist[static_cast<std::size_t>(t.id)];
        return {};
      }
      case 'M':
      case 'V': {
        std::int64_t best = std::numeric_limits<std::int64_t>::min();
        for (const ObjTree& c : t.children) {
          std::int64_t v = 0;
          const std::string why = tree_lower_bound(c, G, clause_set, v);
          if (!why.empty()) return why;
          best = std::max(best, v);
        }
        out = best;
        return {};
      }
      case 'W': {
        __int128 acc = 0;
        for (std::size_t i = 0; i < t.children.size(); ++i) {
          std::int64_t v = 0;
          const std::string why = tree_lower_bound(t.children[i], G, clause_set, v);
          if (!why.empty()) return why;
          acc += static_cast<__int128>(t.params[i]) * v;
        }
        out = acc > kMax ? kMax : static_cast<std::int64_t>(acc);
        return {};
      }
      case 'X': {
        // Big-endian packing with per-child clamping to [0, cap]; strides
        // were validated overflow-free at declaration time.
        __int128 acc = 0;
        for (std::size_t i = 0; i < t.children.size(); ++i) {
          std::int64_t v = 0;
          const std::string why = tree_lower_bound(t.children[i], G, clause_set, v);
          if (!why.empty()) return why;
          const std::int64_t cap = t.params[i];
          acc = acc * (static_cast<__int128>(cap) + 1) +
                std::clamp<std::int64_t>(v, 0, cap);
        }
        out = acc > kMax ? kMax : static_cast<std::int64_t>(acc);
        return {};
      }
      default:
        return "objective binding was never declared";
    }
  }

  /// Verify one theory lemma against the declared tables.  Returns an empty
  /// string on success, the reason otherwise.
  [[nodiscard]] std::string verify_lemma(std::string_view tag,
                                         const std::vector<std::int64_t>& payload,
                                         const Lits& clause) {
    std::set<std::int64_t> clause_set(clause.begin(), clause.end());
    // G: literals the clause claims cannot all hold together.
    std::set<std::int64_t> G;
    for (const std::int64_t l : clause) G.insert(-l);

    if (tag == "DC") {
      std::vector<std::int64_t> dist;
      bool cycle = false;
      longest_paths(G, dist, cycle);
      if (!cycle) return "no positive cycle under the clause guards";
      return {};
    }
    if (tag == "DB") {
      if (payload.size() != 3) return "DB payload must be node/bound/act";
      const std::int64_t node = payload[0];
      const std::int64_t bound = payload[1];
      const std::int64_t act = payload[2];
      if (node < 0 || node >= num_nodes_) return "unknown node";
      if (node_bounds_.count({node, bound, act}) == 0) {
        return "node bound was never declared";
      }
      if (act != 0 && clause_set.count(-act) == 0) {
        return "clause misses the bound's activation negation";
      }
      std::vector<std::int64_t> dist;
      bool cycle = false;
      longest_paths(G, dist, cycle);
      if (!cycle && dist[static_cast<std::size_t>(node)] <= bound) {
        return "guarded longest path does not exceed the bound";
      }
      return {};
    }
    if (tag == "LS") {
      if (payload.size() != 3) return "LS payload must be sum/bound/act";
      const std::int64_t sum = payload[0];
      const std::int64_t bound = payload[1];
      const std::int64_t act = payload[2];
      if (sum < 0 || static_cast<std::size_t>(sum) >= sums_.size()) {
        return "unknown sum";
      }
      if (sum_bounds_.count({sum, bound, act}) == 0) {
        return "sum bound was never declared";
      }
      if (act != 0 && clause_set.count(-act) == 0) {
        return "clause misses the bound's activation negation";
      }
      if (clause_weight_in_sum(static_cast<std::size_t>(sum), clause_set) <= bound) {
        return "negated guards do not exceed the bound";
      }
      return {};
    }
    if (tag == "LL") {
      if (payload.size() != 3) return "LL payload must be sum/bound/act";
      const std::int64_t sum = payload[0];
      const std::int64_t bound = payload[1];
      const std::int64_t act = payload[2];
      if (sum < 0 || static_cast<std::size_t>(sum) >= sums_.size()) {
        return "unknown sum";
      }
      if (sum_lower_bounds_.count({sum, bound, act}) == 0) {
        return "sum floor was never declared";
      }
      if (act != 0 && clause_set.count(-act) == 0) {
        return "clause misses the floor's activation negation";
      }
      // With every positive clause guard false the sum tops out at
      // total - forfeited; the lemma holds iff that misses the floor.
      const std::size_t s = static_cast<std::size_t>(sum);
      if (sum_total(s) - clause_weight_forfeited(s, clause_set) >= bound) {
        return "remaining weight still reaches the floor";
      }
      return {};
    }
    if (tag == "UF") {
      if (payload.empty()) return "UF payload must list the unfounded set";
      std::set<std::int64_t> unfounded(payload.begin(), payload.end());
      bool negated_member = false;
      for (const std::int64_t u : unfounded) {
        if (clause_set.count(-u) != 0) {
          negated_member = true;
          break;
        }
      }
      if (!negated_member) return "clause negates no unfounded atom";
      for (const Rule& r : rules_) {
        if (unfounded.count(r.head) == 0) continue;
        const bool external =
            std::none_of(r.pos_heads.begin(), r.pos_heads.end(),
                         [&](std::int64_t h) { return unfounded.count(h) != 0; });
        if (external && clause_set.count(r.body) == 0) {
          return "clause misses an external support body";
        }
      }
      return {};
    }
    if (tag == "DOM") {
      if (payload.empty() ||
          payload[0] != static_cast<std::int64_t>(payload.size()) - 1) {
        return "DOM payload must be k followed by k thresholds";
      }
      const std::vector<std::int64_t> point(payload.begin() + 1, payload.end());
      if (!some_feasible_leq(point)) {
        return "no certified feasible point at or below the thresholds";
      }
      for (std::size_t i = 0; i < point.size(); ++i) {
        if (point[i] <= 0) continue;  // objectives are >= 0 by construction
        if (i >= objectives_.size() || objectives_[i].kind == 0) {
          return "objective binding was never declared";
        }
        std::int64_t lb = 0;
        const std::string why =
            tree_lower_bound(objectives_[i], G, clause_set, lb);
        if (!why.empty()) return why;
        if (lb < point[i]) {
          return "negated guards do not reach the dominance threshold";
        }
      }
      return {};
    }
    if (tag == "CB") {
      if (payload.size() != 3) return "CB payload must be objective/bound/act";
      const std::int64_t obj = payload[0];
      const std::int64_t bound = payload[1];
      const std::int64_t act = payload[2];
      if (obj < 0 || static_cast<std::size_t>(obj) >= objectives_.size() ||
          objectives_[static_cast<std::size_t>(obj)].kind == 0) {
        return "objective binding was never declared";
      }
      if (comb_bounds_.count({obj, bound, act}) == 0) {
        return "combinator bound was never declared";
      }
      if (act != 0 && clause_set.count(-act) == 0) {
        return "clause misses the bound's activation negation";
      }
      std::int64_t lb = 0;
      const std::string why = tree_lower_bound(
          objectives_[static_cast<std::size_t>(obj)], G, clause_set, lb);
      if (!why.empty()) return why;
      if (lb <= bound) {
        return "negated guards do not exceed the combinator bound";
      }
      return {};
    }
    return "unknown theory tag";
  }

  // ---- step handlers ------------------------------------------------------

  [[nodiscard]] bool read_lits(Line& line, Lits& out) {
    out.clear();
    std::int64_t v = 0;
    while (line.integer(v)) {
      if (v == 0) return true;
      out.push_back(v);
    }
    return false;  // missing terminator
  }

  /// Parse one objective-binding term from an O line.  Grammar:
  ///   term := L <sum> | D <node> | X <k> <cap>{k} <term>{k}
  ///         | M <k> <term>{k} | W <k> <weight>{k} <term>{k} | V <k> <term>{k}
  /// Structural limits mirror the spec validator (depth <= 8, <= 64 nodes);
  /// lex cap products are checked overflow-free so packing arithmetic in
  /// tree_lower_bound cannot wrap.  Returns an empty string on success.
  [[nodiscard]] std::string parse_obj_tree(Line& line, ObjTree& out, int depth,
                                           std::size_t& nodes) {
    if (depth > 8) return "tree too deep";
    if (++nodes > 64) return "tree too large";
    std::string_view what;
    if (!line.word(what)) return "missing term";
    if (what == "L" || what == "D") {
      std::int64_t id = 0;
      if (!line.integer(id) || id < 0) return "malformed leaf";
      out.kind = what[0];
      out.id = id;
      return {};
    }
    if (what != "X" && what != "M" && what != "W" && what != "V") {
      return "unknown term kind";
    }
    out.kind = what[0];
    std::int64_t k = 0;
    if (!line.integer(k) || k < 1 || k > 64) return "malformed arity";
    if (out.kind != 'W' && k < 2) return "combinator needs two children";
    if (out.kind == 'X' || out.kind == 'W') {
      out.params.resize(static_cast<std::size_t>(k));
      __int128 radix = 1;
      for (auto& p : out.params) {
        if (!line.integer(p)) return "malformed parameters";
        if (out.kind == 'X') {
          if (p < 0) return "negative lex cap";
          radix *= static_cast<__int128>(p) + 1;
          if (radix > std::numeric_limits<std::int64_t>::max()) {
            return "lex packing overflows";
          }
        } else if (p < 1) {
          return "weight must be positive";
        }
      }
    }
    out.children.resize(static_cast<std::size_t>(k));
    for (auto& c : out.children) {
      const std::string why = parse_obj_tree(line, c, depth + 1, nodes);
      if (!why.empty()) return why;
    }
    return {};
  }

  /// Record that `lit_or_var`'s variable occurs in an axiom or declaration.
  /// False iff the variable is a replay guard — axioms must never mention
  /// guard variables or the guard-purity soundness argument collapses.
  [[nodiscard]] bool note_axiom_var(std::int64_t lit_or_var) {
    const std::int64_t v = std::abs(lit_or_var);
    if (v == 0) return true;
    if (guard_vars_.count(v) != 0) return false;
    axiom_vars_.insert(v);
    return true;
  }

  [[nodiscard]] bool note_axiom_lits(const Lits& lits) {
    for (const std::int64_t l : lits) {
      if (!note_axiom_var(l)) return false;
    }
    return true;
  }

  /// Like note_axiom_var, but additionally marks the variable *structural*:
  /// it occurs in an input clause, sum term, edge guard, or program rule, so
  /// it can never serve as a pure shard-box activation.
  [[nodiscard]] bool note_structural_var(std::int64_t lit_or_var) {
    if (!note_axiom_var(lit_or_var)) return false;
    if (lit_or_var != 0) structural_vars_.insert(std::abs(lit_or_var));
    return true;
  }

  [[nodiscard]] bool note_structural_lits(const Lits& lits) {
    for (const std::int64_t l : lits) {
      if (!note_structural_var(l)) return false;
    }
    return true;
  }

  /// Record a bound declaration's activation for shard-box extraction.
  /// kind: 0 = sum ceiling (SB), 1 = sum floor (SL), 2 = node bound (NB),
  /// 3 = combinator bound (OB — id is an objective index, not a sum id).
  void note_bound_act(std::int64_t kind, std::int64_t id, std::int64_t bound,
                      std::int64_t act) {
    if (act <= 0) {
      // Unconditional (or negative-literal) bounds block the cross-shard
      // model-extension argument; merged certification refuses the stream.
      result_.unsafe_bounds = true;
      return;
    }
    act_bounds_[act].push_back({kind, id, bound});
  }

  /// A verified Unsat conclusion: when its assumptions are all pure box
  /// activations on the shard objective's sum, record the proven interval.
  void maybe_record_shard_box(const Lits& assumptions) {
    const auto obj = static_cast<std::size_t>(opts_.shard_objective);
    // The shard objective must be a *linear leaf*: combinator axes have no
    // single sum whose SB/SL activations could carve a sound interval.
    if (obj >= objectives_.size() || objectives_[obj].kind != 'L' ||
        !objectives_[obj].children.empty()) {
      return;
    }
    const std::int64_t shard_sum = objectives_[obj].id;
    std::int64_t lo = std::numeric_limits<std::int64_t>::min();
    std::int64_t hi = std::numeric_limits<std::int64_t>::max();
    for (const std::int64_t a : assumptions) {
      if (a <= 0) return;                       // negative phase: not a box act
      if (structural_vars_.count(a) != 0) return;  // occurs in the system
      if (guard_vars_.count(a) != 0) return;       // replay guard
      const auto it = act_bounds_.find(a);
      if (it == act_bounds_.end()) return;      // activates nothing known
      for (const auto& [kind, id, bound] : it->second) {
        // Only plain sum ceilings/floors on the shard sum qualify; node
        // bounds (kind 2) and combinator bounds (kind 3, id = objective
        // index) disqualify the conclusion as a box.
        if (kind != 0 && kind != 1) return;
        if (id != shard_sum) return;
        if (kind == 0) {
          hi = std::min(hi, bound);
        } else {
          lo = std::max(lo, bound);
        }
      }
    }
    result_.shard_boxes.push_back({lo, hi});
  }

  CheckOptions opts_;
  CheckResult result_;

  std::vector<std::int8_t> assign_;  // var -> -1/0/+1
  std::vector<std::int64_t> trail_;
  std::size_t qhead_ = 0;
  std::vector<std::vector<std::uint32_t>> watch_;
  std::vector<Lits> clause_lits_;
  std::vector<char> active_;
  std::map<Lits, std::vector<std::uint32_t>> by_lits_;
  bool root_conflict_ = false;

  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> sums_;
  std::set<std::array<std::int64_t, 3>> sum_bounds_;
  std::set<std::array<std::int64_t, 3>> sum_lower_bounds_;
  std::int64_t num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::set<std::array<std::int64_t, 3>> node_bounds_;
  std::vector<ObjTree> objectives_;  // one binding tree per Pareto axis
  std::set<std::array<std::int64_t, 3>> comb_bounds_;
  std::vector<Rule> rules_;
  std::vector<std::vector<std::int64_t>> feasible_;

  // Guard-purity bookkeeping for `G` replay axioms: variables seen in any
  // axiom/declaration vs. variables consumed as replay guards.
  std::set<std::int64_t> axiom_vars_;
  std::set<std::int64_t> guard_vars_;
  // Shard-box bookkeeping: variables with structural occurrences, and the
  // bound declarations each activation literal switches on.
  std::set<std::int64_t> structural_vars_;
  std::map<std::int64_t, std::vector<std::array<std::int64_t, 3>>> act_bounds_;
};

CheckResult Checker::run(std::string_view proof) {
  std::size_t line_no = 0;
  bool saw_header = false;
  auto fail = [&](std::string_view what) {
    result_.ok = false;
    result_.error = "line " + std::to_string(line_no) + ": " + std::string(what);
    return result_;
  };

  const char* cursor = proof.data();
  const char* const end = proof.data() + proof.size();
  Lits lits;
  while (cursor < end) {
    const char* eol = std::find(cursor, end, '\n');
    Line line(cursor, eol);
    cursor = eol == end ? end : eol + 1;
    ++line_no;

    std::string_view kind;
    if (!line.word(kind)) continue;  // blank line
    if (!saw_header) {
      std::string_view fmt;
      std::string_view version;
      if (kind != "p" || !line.word(fmt) || fmt != "aspmt" ||
          !line.word(version) || version != "1") {
        return fail("missing or unsupported 'p aspmt 1' header");
      }
      saw_header = true;
      continue;
    }

    if (kind == "I" || kind == "L") {
      if (!read_lits(line, lits)) return fail("unterminated clause");
      canonicalize(lits);
      if (kind == "L") {
        if (!rup(lits)) return fail("learnt clause is not RUP");
        ++result_.learnt_clauses;
      } else {
        if (!note_structural_lits(lits)) {
          return fail("input clause mentions a replay guard variable");
        }
        ++result_.input_clauses;
      }
      install(lits);
    } else if (kind == "G") {
      if (!read_lits(line, lits)) return fail("unterminated guarded clause");
      if (lits.empty()) return fail("guarded clause without a guard literal");
      const std::int64_t guard = lits.front();
      if (guard <= 0) return fail("guard literal must be positive");
      if (axiom_vars_.count(guard) != 0) {
        return fail("guard variable is not fresh w.r.t. the axioms");
      }
      Lits tail(lits.begin() + 1, lits.end());
      for (const std::int64_t l : tail) {
        const std::int64_t v = std::abs(l);
        if (v == guard) {
          return fail("guard variable occurs in its own clause tail");
        }
        if (guard_vars_.count(v) != 0) {
          return fail("guarded clause tail mentions a guard variable");
        }
        axiom_vars_.insert(v);
        structural_vars_.insert(v);
      }
      guard_vars_.insert(guard);
      tail.push_back(-guard);
      canonicalize(tail);
      ++result_.guarded_clauses;
      install(std::move(tail));
    } else if (kind == "T") {
      std::string_view tag;
      if (!line.word(tag)) return fail("theory step without tag");
      std::vector<std::int64_t> payload;
      std::string_view tok;
      bool separated = false;
      while (line.word(tok)) {
        if (tok == ";") {
          separated = true;
          break;
        }
        std::int64_t v = 0;
        const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (res.ec != std::errc{} || res.ptr != tok.data() + tok.size()) {
          return fail("malformed theory payload");
        }
        payload.push_back(v);
      }
      if (!separated) return fail("theory step without ';' separator");
      if (!read_lits(line, lits)) return fail("unterminated clause");
      canonicalize(lits);
      if (!note_axiom_lits(lits)) {
        return fail("theory lemma mentions a replay guard variable");
      }
      const std::string why = verify_lemma(tag, payload, lits);
      if (!why.empty()) return fail("theory lemma rejected: " + why);
      ++result_.theory_lemmas;
      install(lits);
    } else if (kind == "D") {
      if (!read_lits(line, lits)) return fail("unterminated deletion");
      canonicalize(lits);
      // The solver stores theory clauses root-simplified, so some deletions
      // have no exact match here; keeping those clauses only strengthens
      // propagation over valid clauses, which stays sound.
      const auto it = by_lits_.find(lits);
      if (it != by_lits_.end()) {
        for (const std::uint32_t id : it->second) {
          if (active_[id]) {
            active_[id] = 0;
            break;
          }
        }
      }
      ++result_.deletions;
    } else if (kind == "U") {
      if (!read_lits(line, lits)) return fail("unterminated conclusion");
      if (!refutes_assumptions(lits)) {
        return fail("Unsat conclusion is not supported by the database");
      }
      ++result_.conclusions;
      if (lits.empty()) result_.concluded_global_unsat = true;
      if (opts_.shard_objective >= 0) maybe_record_shard_box(lits);
    } else if (kind == "M") {
      // model marker — nothing to verify on the proof side
    } else if (kind == "X") {
      std::int64_t zero = 0;
      if (!line.integer(zero) || zero != 0) {
        return fail("malformed truncation marker");
      }
      result_.truncated = true;
    } else if (kind == "F") {
      std::int64_t k = 0;
      if (!line.integer(k) || k < 0) return fail("malformed feasible point");
      std::vector<std::int64_t> point(static_cast<std::size_t>(k));
      for (auto& v : point) {
        if (!line.integer(v)) return fail("malformed feasible point");
      }
      std::int64_t zero = 0;
      if (!line.integer(zero) || zero != 0) {
        return fail("unterminated feasible point");
      }
      if (!opts_.trust_feasible_steps &&
          std::find(opts_.feasible_points.begin(), opts_.feasible_points.end(),
                    point) == opts_.feasible_points.end()) {
        return fail("feasible point lacks a validated witness");
      }
      feasible_.push_back(std::move(point));
      ++result_.feasible_points;
    } else if (kind == "S") {
      std::int64_t id = 0;
      std::int64_t n = 0;
      if (!line.integer(id) || !line.integer(n) || n < 0 ||
          id != static_cast<std::int64_t>(sums_.size())) {
        return fail("malformed sum definition");
      }
      std::vector<std::pair<std::int64_t, std::int64_t>> terms;
      terms.reserve(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        std::int64_t guard = 0;
        std::int64_t weight = 0;
        if (!line.integer(guard) || !line.integer(weight) || guard == 0 ||
            weight < 0) {
          return fail("malformed sum term");
        }
        if (!note_structural_var(guard)) {
          return fail("sum term mentions a replay guard variable");
        }
        terms.emplace_back(guard, weight);
      }
      sums_.push_back(std::move(terms));
    } else if (kind == "SB") {
      std::int64_t id = 0;
      std::int64_t bound = 0;
      std::int64_t act = 0;
      if (!line.integer(id) || !line.integer(bound) || !line.integer(act) ||
          id < 0 || static_cast<std::size_t>(id) >= sums_.size()) {
        return fail("malformed sum bound");
      }
      if (!note_axiom_var(act)) {
        return fail("sum bound mentions a replay guard variable");
      }
      sum_bounds_.insert({id, bound, act});
      note_bound_act(0, id, bound, act);
    } else if (kind == "SL") {
      std::int64_t id = 0;
      std::int64_t bound = 0;
      std::int64_t act = 0;
      if (!line.integer(id) || !line.integer(bound) || !line.integer(act) ||
          id < 0 || static_cast<std::size_t>(id) >= sums_.size()) {
        return fail("malformed sum floor");
      }
      if (!note_axiom_var(act)) {
        return fail("sum floor mentions a replay guard variable");
      }
      sum_lower_bounds_.insert({id, bound, act});
      note_bound_act(1, id, bound, act);
    } else if (kind == "N") {
      std::int64_t id = 0;
      if (!line.integer(id) || id != num_nodes_) {
        return fail("malformed node definition");
      }
      ++num_nodes_;
    } else if (kind == "E") {
      std::int64_t id = 0;
      Edge e;
      std::int64_t n = 0;
      if (!line.integer(id) || !line.integer(e.from) || !line.integer(e.to) ||
          !line.integer(e.weight) || !line.integer(n) || n < 0 ||
          id != static_cast<std::int64_t>(edges_.size()) || e.from < 0 ||
          e.from >= num_nodes_ || e.to < 0 || e.to >= num_nodes_) {
        return fail("malformed edge definition");
      }
      e.guards.resize(static_cast<std::size_t>(n));
      for (auto& g : e.guards) {
        if (!line.integer(g) || g == 0) return fail("malformed edge guard");
        if (!note_structural_var(g)) {
          return fail("edge guard mentions a replay guard variable");
        }
      }
      edges_.push_back(std::move(e));
    } else if (kind == "NB") {
      std::int64_t id = 0;
      std::int64_t bound = 0;
      std::int64_t act = 0;
      if (!line.integer(id) || !line.integer(bound) || !line.integer(act) ||
          id < 0 || id >= num_nodes_) {
        return fail("malformed node bound");
      }
      if (!note_axiom_var(act)) {
        return fail("node bound mentions a replay guard variable");
      }
      node_bounds_.insert({id, bound, act});
      note_bound_act(2, id, bound, act);
    } else if (kind == "O") {
      std::int64_t obj = 0;
      if (!line.integer(obj) || obj < 0) {
        return fail("malformed objective binding");
      }
      ObjTree tree;
      std::size_t nodes = 0;
      const std::string why = parse_obj_tree(line, tree, 0, nodes);
      if (!why.empty()) return fail("malformed objective binding: " + why);
      std::string_view rest;
      if (line.word(rest)) {
        return fail("malformed objective binding: trailing tokens");
      }
      if (objectives_.size() < static_cast<std::size_t>(obj) + 1) {
        objectives_.resize(static_cast<std::size_t>(obj) + 1);
      }
      objectives_[static_cast<std::size_t>(obj)] = std::move(tree);
    } else if (kind == "OB") {
      std::int64_t obj = 0;
      std::int64_t bound = 0;
      std::int64_t act = 0;
      if (!line.integer(obj) || !line.integer(bound) || !line.integer(act) ||
          obj < 0 || static_cast<std::size_t>(obj) >= objectives_.size() ||
          objectives_[static_cast<std::size_t>(obj)].kind == 0) {
        return fail("combinator bound on an undeclared objective");
      }
      if (!note_axiom_var(act)) {
        return fail("combinator bound mentions a replay guard variable");
      }
      comb_bounds_.insert({obj, bound, act});
      note_bound_act(3, obj, bound, act);
    } else if (kind == "PR") {
      Rule r;
      std::int64_t n = 0;
      if (!line.integer(r.head) || r.head == 0 || !line.integer(r.body) ||
          r.body == 0 || !line.integer(n) || n < 0) {
        return fail("malformed program rule");
      }
      r.pos_heads.resize(static_cast<std::size_t>(n));
      for (auto& h : r.pos_heads) {
        if (!line.integer(h) || h == 0) return fail("malformed program rule");
      }
      if (!note_structural_var(r.head) || !note_structural_var(r.body) ||
          !note_structural_lits(r.pos_heads)) {
        return fail("program rule mentions a replay guard variable");
      }
      rules_.push_back(std::move(r));
    } else {
      return fail("unknown step kind '" + std::string(kind) + "'");
    }
  }

  if (!saw_header) {
    ++line_no;
    return fail("empty proof");
  }
  if (opts_.require_global_unsat && !result_.concluded_global_unsat) {
    ++line_no;
    return fail("proof never concludes global unsatisfiability");
  }
  result_.ok = true;
  return result_;
}

}  // namespace

CheckResult check_proof(std::string_view proof, const CheckOptions& options) {
  Checker checker(options);
  return checker.run(proof);
}

}  // namespace aspmt::cert
