// Minimal blocking client for the aspmt_served unix-socket protocol.
// Used by the `aspmt_served` CLI subcommands and the service tests; one
// connection per Client, one request/response line pair per call, plus a
// read_line() escape hatch for streamed events.
#pragma once

#include <string>

#include "serve/protocol.hpp"

namespace aspmt::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to the daemon socket.  Returns "" on success.
  [[nodiscard]] std::string connect(const std::string& socket_path);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Send one request object and read one response line into `response`.
  /// Returns "" on success, a transport diagnostic otherwise.
  [[nodiscard]] std::string request(const Json& req, Json& response);

  /// Send a request without waiting for the reply (streamed ops).
  [[nodiscard]] std::string send(const Json& req);

  /// Read the next protocol line into `out`.  Returns "" on success,
  /// "eof" when the daemon closed the connection, a diagnostic otherwise.
  [[nodiscard]] std::string read_line(std::string& out);

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last returned line
};

}  // namespace aspmt::serve
