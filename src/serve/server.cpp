#include "serve/server.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "synth/specio.hpp"

namespace aspmt::serve {

namespace {

/// Recover the numeric suffix of a "j-<n>" id; 0 when foreign.
std::uint64_t seq_of_id(const std::string& id) {
  if (id.size() < 3 || id.compare(0, 2, "j-") != 0) return 0;
  std::uint64_t n = 0;
  const char* begin = id.data() + 2;
  const char* end = id.data() + id.size();
  const auto res = std::from_chars(begin, end, n);
  return res.ec == std::errc{} && res.ptr == end ? n : 0;
}

}  // namespace

/// Routes the exploration run's obs events to the job's stream
/// subscribers.  Lives as long as the job; callbacks arrive on the run's
/// collector thread (serialized per run by contract).
class Server::JobSinkAdapter final : public obs::EventSink {
 public:
  JobSinkAdapter(Server* server, std::string job_id)
      : server_(server), job_id_(std::move(job_id)) {}

  void on_event(const obs::Event& e) override {
    JobEvent ev;
    ev.job_id = job_id_;
    switch (e.kind) {
      case obs::EventKind::ArchiveInsert:
        ev.kind = JobEvent::Kind::FrontDelta;
        ev.payload = {e.a, e.b, e.c};
        break;
      case obs::EventKind::StatsSample:
        ev.kind = JobEvent::Kind::Progress;
        ev.payload = {e.a, e.b, e.c};
        break;
      case obs::EventKind::CheckpointWrite:
        ev.kind = JobEvent::Kind::Checkpoint;
        ev.payload = {e.a, e.b};
        break;
      default:
        return;  // solver-cadence events stay daemon-internal
    }
    server_->publish_by_id(job_id_, ev);
  }

 private:
  Server* server_;
  std::string job_id_;
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      journal_(options_.journal_dir),
      supervisor_(options_.retry, options_.seed) {}

Server::~Server() { drain(); }

std::vector<std::string> Server::start() {
  std::vector<std::string> diagnostics;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return diagnostics;
  journaling_ = !options_.journal_dir.empty();
  sync_fail_ = dse::FaultPlan::from_env().sync_fail;
  if (journaling_) {
    std::uint64_t max_seq = 0;
    for (JobRecord& record : journal_.load_all(&diagnostics)) {
      auto job = std::make_shared<Job>();
      job->seq = seq_of_id(record.id);
      max_seq = std::max(max_seq, job->seq);
      // Re-admit interrupted work: a job the dead daemon had running (or
      // queued) goes back to the queue; its exploration checkpoint, if any,
      // makes the re-run a resume rather than a restart.  Terminal jobs
      // stay queryable with their recorded fronts.
      if (!is_terminal(record.state)) {
        record.state = JobState::Queued;
        ++counters_.admitted;
      } else {
        switch (record.state) {
          case JobState::Completed: ++counters_.completed; break;
          case JobState::Cancelled: ++counters_.cancelled; break;
          case JobState::Shed: ++counters_.shed; break;
          case JobState::Quarantined: ++counters_.quarantined; break;
          default: break;
        }
      }
      // Rebuild the request from the journaled record so recovered jobs
      // run through the same path as fresh ones (no before_attempt hook,
      // no subscribers — those die with their connections).
      job->request.tenant = record.tenant;
      job->request.spec_text = record.spec_text;
      job->request.priority = record.priority;
      job->request.threads = record.threads;
      job->request.limits = record.limits;
      job->request.certify = record.certify;
      job->record = std::move(record);
      if (job->record.state == JobState::Queued) journal_locked(*job);
      jobs_[job->record.id] = std::move(job);
    }
    next_seq_ = max_seq + 1;
  }
  started_ = true;
  const std::size_t workers = std::max<std::size_t>(1, options_.workers);
  pool_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    pool_.emplace_back([this, i] { worker_loop(i); });
  }
  update_gauges_locked();
  return diagnostics;
}

SubmitOutcome Server::submit(JobRequest request) {
  SubmitOutcome out;
  // Validate outside the lock — a malformed spec must never cost the pool.
  try {
    (void)synth::parse_specification(request.spec_text);
  } catch (const std::exception& e) {
    out.reject_reason = "invalid-spec";
    out.detail = e.what();
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.rejected;
    return out;
  }
  if (request.limits.wall_seconds <= 0.0) {
    request.limits.wall_seconds = options_.default_time_limit_seconds;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || !started_) {
      out.reject_reason = "draining";
      out.detail = started_ ? "daemon is draining" : "daemon is not started";
      ++counters_.rejected;
      return out;
    }
    if (queued_count_locked() >= options_.max_queue_depth) {
      out.reject_reason = "overload";
      out.detail = "queue full";
      ++counters_.rejected;
      return out;
    }
    if (tenant_live_locked(request.tenant) >= options_.tenant_quota) {
      out.reject_reason = "overload";
      out.detail = "tenant quota exceeded";
      ++counters_.rejected;
      return out;
    }

    auto job = std::make_shared<Job>();
    job->seq = next_seq_++;
    job->record.id = "j-" + std::to_string(job->seq);
    job->record.tenant = request.tenant;
    job->record.state = JobState::Queued;
    job->record.priority = request.priority;
    job->record.threads = std::clamp<std::size_t>(
        request.threads, 1, std::max<std::size_t>(1, options_.max_job_threads));
    job->record.limits = request.limits;
    job->record.certify = request.certify;
    job->record.spec_text = request.spec_text;
    job->request = std::move(request);
    out.accepted = true;
    out.job_id = job->record.id;
    ++counters_.admitted;
    jobs_[job->record.id] = job;
    journal_locked(*job);
    emit(obs::EventKind::JobAdmit, static_cast<std::int64_t>(job->seq),
         static_cast<std::int64_t>(queued_count_locked()),
         job->record.priority);
    shed_overloaded_locked();
    update_gauges_locked();
    work_cv_.notify_one();
  }
  flush_events();
  return out;
}

bool Server::cancel(const std::string& job_id) {
  std::shared_ptr<dse::Session> session;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return false;
    Job& job = *it->second;
    job.cancel_requested = true;
    session = job.session;
    if (job.record.state == JobState::Queued) {
      job.record.error = "cancelled by client";
      finish_job_locked(job, JobState::Cancelled);
      update_gauges_locked();
    }
    // Running jobs: the budget trip below unwinds the attempt and the
    // worker finalizes to Cancelled.  Terminal jobs: idempotent success.
  }
  if (session != nullptr) session->cancel();
  flush_events();
  return true;
}

Server::StatusResult Server::status(const std::string& job_id) const {
  StatusResult out;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return out;
  out.known = true;
  out.record = it->second->record;
  return out;
}

Server::StatusResult Server::wait(const std::string& job_id,
                                  double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto terminal = [&]() {
    const auto it = jobs_.find(job_id);
    return it == jobs_.end() || is_terminal(it->second->record.state);
  };
  if (timeout_seconds > 0.0) {
    done_cv_.wait_for(
        lock,
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::duration<double>(timeout_seconds)),
        terminal);
  } else {
    done_cv_.wait(lock, terminal);
  }
  StatusResult out;
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return out;
  out.known = true;
  out.record = it->second->record;
  return out;
}

bool Server::subscribe(const std::string& job_id,
                       std::function<void(const JobEvent&)> callback) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return false;
    Job& job = *it->second;
    if (is_terminal(job.record.state)) {
      JobEvent ev;
      ev.kind = JobEvent::Kind::Done;
      ev.job_id = job_id;
      ev.state = job.record.state;
      pending_events_.push_back({{std::move(callback)}, std::move(ev)});
    } else {
      job.subscribers.push_back(std::move(callback));
    }
  }
  flush_events();
  return true;
}

ServerStats Server::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ServerStats s = counters_;
  s.queued = queued_count_locked();
  s.running = running_;
  s.draining = draining_;
  return s;
}

void Server::drain() {
  std::vector<std::shared_ptr<dse::Session>> to_interrupt;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!started_ || drained_) {
      drained_ = true;
      return;
    }
    draining_ = true;
    work_cv_.notify_all();
    // Grace window: let running jobs finish on their own steam.
    const double grace = std::max(0.0, options_.drain_grace_seconds);
    done_cv_.wait_for(lock,
                      std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::duration<double>(grace)),
                      [this] { return running_ == 0; });
    if (running_ > 0) {
      for (const auto& [id, job] : jobs_) {
        if (job->record.state == JobState::Running && job->session != nullptr) {
          to_interrupt.push_back(job->session);
        }
      }
    }
  }
  // Interrupt (not cancel): the attempt checkpoints and re-journals as
  // queued, so the next daemon resumes it.
  for (const auto& session : to_interrupt) session->interrupt();
  for (std::thread& t : pool_) t.join();
  pool_.clear();
  flush_events();
  if (options_.sink != nullptr) {
    const std::lock_guard<std::mutex> lock(sink_mutex_);
    options_.sink->flush();
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  drained_ = true;
  update_gauges_locked();
}

// ---- internals -------------------------------------------------------------

std::shared_ptr<Server::Job> Server::pick_locked(double now) {
  std::shared_ptr<Job> best;
  for (const auto& [id, job] : jobs_) {
    if (job->record.state != JobState::Queued || job->ready_at > now) continue;
    if (best == nullptr || job->record.priority > best->record.priority ||
        (job->record.priority == best->record.priority &&
         job->seq < best->seq)) {
      best = job;
    }
  }
  return best;
}

void Server::worker_loop(std::size_t worker_index) {
  (void)worker_index;
  for (;;) {
    std::shared_ptr<Job> job;
    std::shared_ptr<dse::Session> session;
    std::string build_error;
    std::size_t attempt = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (draining_) return;
      job = pick_locked(epoch_.elapsed_seconds());
      if (job == nullptr) {
        work_cv_.wait_for(lock, std::chrono::milliseconds(50));
        continue;
      }
      job->record.state = JobState::Running;
      ++job->record.attempts;
      attempt = job->record.attempts;
      ++running_;
      journal_locked(*job);
      if (job->session == nullptr) {
        try {
          synth::Specification spec =
              synth::parse_specification(job->record.spec_text);
          job->adapter =
              std::make_shared<JobSinkAdapter>(this, job->record.id);
          dse::SessionOptions sopts;
          sopts.base.threads = job->record.threads;
          sopts.base.seed = options_.seed + job->seq;
          sopts.base.common.certify = job->record.certify;
          sopts.base.common.sink = job->adapter.get();
          sopts.limits = job->record.limits;
          if (journaling_) {
            sopts.checkpoint_path =
                journal_.checkpoint_path(job->record.id);
            sopts.checkpoint_interval_seconds =
                options_.checkpoint_interval_seconds;
          }
          job->session =
              std::make_shared<dse::Session>(std::move(spec), sopts);
        } catch (const std::exception& e) {
          build_error = std::string("spec rejected: ") + e.what();
        }
      }
      session = job->session;
      update_gauges_locked();
    }

    bool attempt_failed = false;
    std::string fail_msg;
    dse::ParallelExploreResult result;
    bool have_result = false;
    if (session == nullptr) {
      attempt_failed = true;
      fail_msg = build_error;
    } else {
      try {
        if (job->request.before_attempt) job->request.before_attempt(attempt);
        result = session->run();
        have_result = true;
      } catch (const std::exception& e) {
        attempt_failed = true;
        fail_msg = e.what();
      } catch (...) {
        attempt_failed = true;
        fail_msg = "unknown exception";
      }
    }
    if (!attempt_failed && have_result) {
      // Total worker wipeout without a front is an attempt failure (the
      // supervisor decides its fate); a partial front is a result.
      const dse::ExploreStats& st = result.base.stats;
      if (!st.complete && st.reason == dse::StopReason::WorkerFailure &&
          result.base.front.empty()) {
        attempt_failed = true;
        fail_msg = result.worker_errors.empty()
                       ? "all workers failed"
                       : result.worker_errors.front().message;
      }
    }

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (job->cancel_requested) {
        job->record.error = "cancelled by client";
        finish_job_locked(*job, JobState::Cancelled);
      } else if (attempt_failed) {
        const dse::RetrySupervisor::Decision decision =
            supervisor_.on_failure(job->seq);
        job->record.error = fail_msg;
        if (decision.retry) {
          job->record.state = JobState::Queued;
          job->ready_at =
              epoch_.elapsed_seconds() + decision.delay_seconds;
          ++counters_.retries;
          journal_locked(*job);
          emit(obs::EventKind::JobRequeue,
               static_cast<std::int64_t>(job->seq),
               static_cast<std::int64_t>(decision.attempt),
               static_cast<std::int64_t>(decision.delay_seconds * 1e3));
          JobEvent ev;
          ev.kind = JobEvent::Kind::Requeue;
          ev.job_id = job->record.id;
          ev.payload = {static_cast<std::int64_t>(decision.attempt),
                        static_cast<std::int64_t>(decision.delay_seconds *
                                                  1e3)};
          publish_locked(*job, std::move(ev));
          work_cv_.notify_all();
        } else {
          emit(obs::EventKind::JobQuarantine,
               static_cast<std::int64_t>(job->seq),
               static_cast<std::int64_t>(job->record.attempts), 0);
          finish_job_locked(*job, JobState::Quarantined);
        }
      } else if (have_result && draining_ && !result.base.stats.complete &&
                 result.base.stats.reason == dse::StopReason::Interrupted) {
        // Drain interrupted the attempt: the final checkpoint is on disk,
        // re-journal as queued so the next daemon resumes it.
        job->record.state = JobState::Queued;
        journal_locked(*job);
      } else if (have_result) {
        job->record.complete = result.base.stats.complete;
        job->record.certified = result.base.certified;
        job->record.seconds = result.base.stats.seconds;
        job->record.front = result.base.front;
        job->record.error =
            result.base.errors.empty() ? "" : result.base.errors.front();
        finish_job_locked(*job, JobState::Completed);
      }
      done_cv_.notify_all();
      update_gauges_locked();
    }
    flush_events();
  }
}

void Server::shed_overloaded_locked() {
  const auto shed_one = [this](bool rss_trigger) {
    // Victim: newest (max seq) among the lowest-priority queued jobs.
    std::shared_ptr<Job> victim;
    for (const auto& [id, job] : jobs_) {
      if (job->record.state != JobState::Queued) continue;
      if (victim == nullptr ||
          job->record.priority < victim->record.priority ||
          (job->record.priority == victim->record.priority &&
           job->seq > victim->seq)) {
        victim = job;
      }
    }
    if (victim == nullptr) return false;
    victim->record.error = rss_trigger
                               ? "load shed: rss watermark crossed"
                               : "load shed: queue watermark crossed";
    emit(obs::EventKind::JobShed, static_cast<std::int64_t>(victim->seq),
         static_cast<std::int64_t>(queued_count_locked()),
         rss_trigger ? 1 : 0);
    finish_job_locked(*victim, JobState::Shed);
    return true;
  };
  while (queued_count_locked() > options_.shed_watermark) {
    if (!shed_one(false)) break;
  }
  if (options_.rss_watermark_mb > 0) {
    const long rss = dse::peak_rss_mb();
    if (rss > 0 && static_cast<std::size_t>(rss) > options_.rss_watermark_mb) {
      (void)shed_one(true);
    }
  }
}

void Server::journal_locked(Job& job) {
  if (!journaling_) return;
  const std::string err = journal_.save(job.record, sync_fail_);
  // A degraded (fsync-failed) save still published the record; any journal
  // diagnostic is recorded on the job, never fatal to the daemon.
  if (!err.empty()) job.record.error = err;
}

void Server::emit(obs::EventKind kind, std::int64_t a, std::int64_t b,
                  std::int64_t c) {
  if (options_.sink == nullptr) return;
  obs::Event ev;
  ev.t_ns = static_cast<std::uint64_t>(epoch_.elapsed_seconds() * 1e9);
  ev.kind = kind;
  ev.a = a;
  ev.b = b;
  ev.c = c;
  ev.worker = 0;
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  options_.sink->on_event(ev);
}

void Server::publish_locked(Job& job, JobEvent event) {
  if (job.subscribers.empty()) return;
  pending_events_.push_back({job.subscribers, std::move(event)});
}

void Server::flush_events() {
  std::vector<std::pair<std::vector<std::function<void(const JobEvent&)>>,
                        JobEvent>>
      pending;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    pending.swap(pending_events_);
  }
  for (const auto& [subscribers, event] : pending) {
    for (const auto& callback : subscribers) callback(event);
  }
}

void Server::publish_by_id(const std::string& job_id, const JobEvent& event) {
  std::vector<std::function<void(const JobEvent&)>> subscribers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return;
    subscribers = it->second->subscribers;
  }
  for (const auto& callback : subscribers) callback(event);
}

void Server::finish_job_locked(Job& job, JobState state) {
  job.record.state = state;
  switch (state) {
    case JobState::Completed: ++counters_.completed; break;
    case JobState::Cancelled: ++counters_.cancelled; break;
    case JobState::Shed: ++counters_.shed; break;
    case JobState::Quarantined: ++counters_.quarantined; break;
    default: break;
  }
  journal_locked(job);
  emit(obs::EventKind::JobDone, static_cast<std::int64_t>(job.seq),
       static_cast<std::int64_t>(state),
       static_cast<std::int64_t>(job.record.front.size()));
  JobEvent ev;
  ev.kind = JobEvent::Kind::Done;
  ev.job_id = job.record.id;
  ev.state = state;
  publish_locked(job, std::move(ev));
  job.session.reset();  // release the solver pool; record stays queryable
  done_cv_.notify_all();
}

std::size_t Server::queued_count_locked() const {
  std::size_t n = 0;
  for (const auto& [id, job] : jobs_) {
    if (job->record.state == JobState::Queued) ++n;
  }
  return n;
}

std::size_t Server::tenant_live_locked(const std::string& tenant) const {
  std::size_t n = 0;
  for (const auto& [id, job] : jobs_) {
    if (job->record.tenant != tenant) continue;
    if (job->record.state == JobState::Queued ||
        job->record.state == JobState::Running) {
      ++n;
    }
  }
  return n;
}

void Server::update_gauges_locked() {
  obs::MetricsRegistry* reg = options_.metrics;
  if (reg == nullptr) return;
  reg->gauge("serve.queue_depth").set(static_cast<double>(queued_count_locked()));
  reg->gauge("serve.running").set(static_cast<double>(running_));
  reg->counter("serve.admitted").set(counters_.admitted);
  reg->counter("serve.rejected").set(counters_.rejected);
  reg->counter("serve.shed").set(counters_.shed);
  reg->counter("serve.retries").set(counters_.retries);
  reg->counter("serve.quarantined").set(counters_.quarantined);
  reg->counter("serve.completed").set(counters_.completed);
  reg->counter("serve.cancelled").set(counters_.cancelled);
}

}  // namespace aspmt::serve
