// Line-delimited JSON wire protocol for the exploration service.
//
// One JSON object per line in each direction; no external JSON dependency,
// so this is a deliberately small value type covering exactly the subset
// the protocol needs (null, bool, int64, double, string, array, object)
// with a recursion-depth guard on the parser.  Numbers without '.', 'e'
// or 'E' parse as Int, everything else as Double; object member order is
// preserved for stable golden output.
//
// The request/response grammar itself is documented in DESIGN.md §15.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aspmt::serve {

class Json {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Int, Double, String, Array, Object };

  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}  // NOLINT
  Json(std::int64_t i) : kind_(Kind::Int), int_(i) {}  // NOLINT
  Json(int i) : kind_(Kind::Int), int_(i) {}  // NOLINT
  Json(std::size_t u)  // NOLINT
      : kind_(Kind::Int), int_(static_cast<std::int64_t>(u)) {}
  Json(double d) : kind_(Kind::Double), double_(d) {}  // NOLINT
  Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : kind_(Kind::String), string_(s) {}  // NOLINT

  [[nodiscard]] static Json array() {
    Json j;
    j.kind_ = Kind::Array;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.kind_ = Kind::Object;
    return j;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::Object;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::String;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::Int || kind_ == Kind::Double;
  }

  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept {
    return kind_ == Kind::Bool ? bool_ : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const noexcept {
    if (kind_ == Kind::Int) return int_;
    if (kind_ == Kind::Double) return static_cast<std::int64_t>(double_);
    return fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const noexcept {
    if (kind_ == Kind::Double) return double_;
    if (kind_ == Kind::Int) return static_cast<double>(int_);
    return fallback;
  }
  [[nodiscard]] const std::string& as_string() const noexcept {
    static const std::string kEmpty;
    return kind_ == Kind::String ? string_ : kEmpty;
  }

  [[nodiscard]] const std::vector<Json>& items() const noexcept {
    return array_;
  }
  std::vector<Json>& items() noexcept { return array_; }
  void push_back(Json v) {
    kind_ = Kind::Array;
    array_.push_back(std::move(v));
  }

  /// Object member access; get() returns null for a missing key.
  void set(std::string key, Json value);
  [[nodiscard]] const Json& get(std::string_view key) const noexcept;
  [[nodiscard]] bool has(std::string_view key) const noexcept;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const noexcept {
    return object_;
  }

  /// Compact single-line serialization (never emits raw newlines: they are
  /// escaped inside strings, so one value is always one protocol line).
  [[nodiscard]] std::string dump() const;

  /// Parse one JSON value.  Returns "" and fills `out` on success, a
  /// diagnostic otherwise.  Trailing garbage after the value is an error.
  [[nodiscard]] static std::string parse(std::string_view text, Json& out);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace aspmt::serve
