#include "serve/endpoint.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "serve/protocol.hpp"

namespace aspmt::serve {

namespace {

Json record_to_json(const JobRecord& record) {
  Json out = Json::object();
  out.set("job", record.id);
  out.set("tenant", record.tenant);
  out.set("state", to_string(record.state));
  out.set("attempts", record.attempts);
  if (!record.error.empty()) out.set("error", record.error);
  if (is_terminal(record.state)) {
    out.set("complete", record.complete);
    out.set("certified", record.certified);
    out.set("seconds", record.seconds);
    Json front = Json::array();
    for (const pareto::Vec& p : record.front) {
      Json point = Json::array();
      for (const std::int64_t v : p) point.push_back(v);
      front.push_back(std::move(point));
    }
    out.set("front", std::move(front));
  }
  return out;
}

Json error_response(const std::string& message) {
  Json out = Json::object();
  out.set("ok", false);
  out.set("error", message);
  return out;
}

}  // namespace

void SocketEndpoint::ConnWriter::write_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mutex);
  if (closed) return;
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ::ssize_t n = ::send(fd, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      closed = true;  // peer went away; late events become no-ops
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void SocketEndpoint::ConnWriter::close() {
  const std::lock_guard<std::mutex> lock(mutex);
  if (closed) return;
  closed = true;
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

SocketEndpoint::SocketEndpoint(Server& server, std::string socket_path,
                               std::function<void()> on_drain)
    : server_(server),
      socket_path_(std::move(socket_path)),
      on_drain_(std::move(on_drain)) {}

SocketEndpoint::~SocketEndpoint() { stop(); }

std::string SocketEndpoint::start() {
  sockaddr_un addr{};
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    return "socket path too long (" + std::to_string(socket_path_.size()) +
           " bytes, limit " + std::to_string(sizeof(addr.sun_path) - 1) + ")";
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return "cannot create socket";
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  ::unlink(socket_path_.c_str());  // stale socket from a killed predecessor
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "cannot bind '" + socket_path_ + "': " + std::strerror(errno);
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return "cannot listen on '" + socket_path_ + "'";
  }
  listen_fd_.store(fd);
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return "";
}

void SocketEndpoint::stop() {
  if (!started_ || stopping_.exchange(true)) {
    // Still join if a racing stop() won the exchange but hasn't finished;
    // the joins below are idempotent via joinable().
  }
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<ConnWriter>> conns;
  {
    const std::lock_guard<std::mutex> lock(conns_mutex_);
    conns = conns_;
  }
  for (const auto& writer : conns) writer->close();
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(conns_mutex_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  ::unlink(socket_path_.c_str());
}

void SocketEndpoint::accept_loop() {
  for (;;) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) return;  // stop() already retired the listener
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop) or hard error
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    const std::lock_guard<std::mutex> lock(conns_mutex_);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void SocketEndpoint::serve_connection(int fd) {
  auto writer = std::make_shared<ConnWriter>();
  writer->fd = fd;
  {
    const std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.push_back(writer);
  }
  std::string linebuf;
  char buf[4096];
  for (;;) {
    const ::ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    std::size_t off = 0;
    while (off < static_cast<std::size_t>(n)) {
      const char* nl = static_cast<const char*>(
          std::memchr(buf + off, '\n', static_cast<std::size_t>(n) - off));
      if (nl == nullptr) {
        linebuf.append(buf + off, static_cast<std::size_t>(n) - off);
        break;
      }
      linebuf.append(buf + off, static_cast<std::size_t>(nl - (buf + off)));
      off = static_cast<std::size_t>(nl - buf) + 1;
      if (!linebuf.empty()) {
        const std::string response = handle_request(linebuf, writer);
        if (!response.empty()) writer->write_line(response);
      }
      linebuf.clear();
    }
  }
  writer->close();
}

std::string SocketEndpoint::handle_request(
    const std::string& line, const std::shared_ptr<ConnWriter>& writer) {
  Json request;
  const std::string parse_err = Json::parse(line, request);
  if (!parse_err.empty()) return error_response(parse_err).dump();
  if (!request.is_object()) {
    return error_response("request must be an object").dump();
  }
  const std::string op = request.get("op").as_string();

  if (op == "hello") {
    Json out = Json::object();
    out.set("ok", true);
    out.set("server", "aspmt_served");
    out.set("proto", 1);
    return out.dump();
  }

  if (op == "submit") {
    JobRequest job;
    job.spec_text = request.get("spec").as_string();
    if (request.has("tenant")) job.tenant = request.get("tenant").as_string();
    job.priority = request.get("priority").as_int(0);
    job.threads =
        static_cast<std::size_t>(request.get("threads").as_int(1));
    job.limits.wall_seconds = request.get("time_limit").as_double(0.0);
    job.limits.conflicts =
        static_cast<std::uint64_t>(request.get("conflicts").as_int(0));
    job.limits.memory_mb =
        static_cast<std::size_t>(request.get("mem_mb").as_int(0));
    job.certify = request.get("certify").as_bool(false);
    const bool stream = request.get("stream").as_bool(false);
    const SubmitOutcome outcome = server_.submit(std::move(job));
    Json out = Json::object();
    if (!outcome.accepted) {
      out.set("ok", false);
      out.set("rejected", outcome.reject_reason);
      if (!outcome.detail.empty()) out.set("detail", outcome.detail);
      return out.dump();
    }
    out.set("ok", true);
    out.set("job", outcome.job_id);
    if (!stream) return out.dump();
    // Streamed submits: acknowledge first, then subscribe, so the accept
    // line always precedes the first event on the wire.
    writer->write_line(out.dump());
    Server* server = &server_;
    const std::string job_id = outcome.job_id;
    server_.subscribe(job_id, [writer, server, job_id](const JobEvent& ev) {
      Json msg = Json::object();
      msg.set("job", ev.job_id);
      switch (ev.kind) {
        case JobEvent::Kind::FrontDelta: {
          msg.set("event", "front-delta");
          Json point = Json::array();
          for (const std::int64_t v : ev.payload) point.push_back(v);
          msg.set("point", std::move(point));
          break;
        }
        case JobEvent::Kind::Progress:
          msg.set("event", "progress");
          if (ev.payload.size() == 3) {
            msg.set("conflicts", ev.payload[0]);
            msg.set("propagations", ev.payload[1]);
            msg.set("decisions", ev.payload[2]);
          }
          break;
        case JobEvent::Kind::Checkpoint:
          msg.set("event", "checkpoint");
          if (ev.payload.size() == 2) {
            msg.set("points", ev.payload[0]);
            msg.set("ok", ev.payload[1] != 0);
          }
          break;
        case JobEvent::Kind::Requeue:
          msg.set("event", "requeue");
          if (ev.payload.size() == 2) {
            msg.set("attempt", ev.payload[0]);
            msg.set("backoff_ms", ev.payload[1]);
          }
          break;
        case JobEvent::Kind::Done: {
          msg = record_to_json(server->status(ev.job_id).record);
          msg.set("event", "done");
          break;
        }
      }
      writer->write_line(msg.dump());
    });
    return "";
  }

  if (op == "status" || op == "result") {
    const std::string job_id = request.get("job").as_string();
    Server::StatusResult status;
    if (op == "result" && request.get("wait").as_bool(true)) {
      // Sliced waits keep the connection thread joinable on stop().
      const double timeout = request.get("timeout").as_double(0.0);
      util::Timer waited;
      for (;;) {
        status = server_.wait(job_id, 0.25);
        if (!status.known || is_terminal(status.record.state)) break;
        if (stopping_.load()) break;
        if (timeout > 0.0 && waited.elapsed_seconds() >= timeout) break;
      }
    } else {
      status = server_.status(job_id);
    }
    if (!status.known) return error_response("unknown job").dump();
    Json out = record_to_json(status.record);
    out.set("ok", true);
    return out.dump();
  }

  if (op == "cancel") {
    const std::string job_id = request.get("job").as_string();
    Json out = Json::object();
    out.set("ok", server_.cancel(job_id));
    return out.dump();
  }

  if (op == "stats") {
    const ServerStats s = server_.stats();
    Json out = Json::object();
    out.set("ok", true);
    out.set("queued", s.queued);
    out.set("running", s.running);
    out.set("completed", s.completed);
    out.set("cancelled", s.cancelled);
    out.set("shed", s.shed);
    out.set("quarantined", s.quarantined);
    out.set("admitted", static_cast<std::int64_t>(s.admitted));
    out.set("rejected", static_cast<std::int64_t>(s.rejected));
    out.set("retries", static_cast<std::int64_t>(s.retries));
    out.set("draining", s.draining);
    return out.dump();
  }

  if (op == "drain") {
    Json out = Json::object();
    out.set("ok", true);
    out.set("draining", true);
    writer->write_line(out.dump());
    if (on_drain_) on_drain_();
    return "";
  }

  return error_response("unknown op '" + op + "'").dump();
}

}  // namespace aspmt::serve
