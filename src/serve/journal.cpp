#include "serve/journal.hpp"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "dse/checkpoint.hpp"

namespace aspmt::serve {

namespace {

constexpr std::string_view kHeader = "aspmt-job 1";

std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  const auto res = std::from_chars(text.data(), text.data() + text.size(), out);
  return res.ec == std::errc{} && res.ptr == text.data() + text.size();
}

bool parse_i64(std::string_view text, std::int64_t& out) {
  const auto res = std::from_chars(text.data(), text.data() + text.size(), out);
  return res.ec == std::errc{} && res.ptr == text.data() + text.size();
}

bool parse_f64(std::string_view text, double& out) {
  const auto res = std::from_chars(text.data(), text.data() + text.size(), out);
  return res.ec == std::errc{} && res.ptr == text.data() + text.size();
}

std::string_view take_token(std::string_view& rest) {
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  const std::size_t sp = rest.find(' ');
  const std::string_view tok = rest.substr(0, sp);
  rest = sp == std::string_view::npos ? std::string_view{}
                                      : rest.substr(sp + 1);
  return tok;
}

bool state_from_name(std::string_view name, JobState& out) {
  if (name == "queued") out = JobState::Queued;
  else if (name == "running") out = JobState::Running;
  else if (name == "completed") out = JobState::Completed;
  else if (name == "cancelled") out = JobState::Cancelled;
  else if (name == "shed") out = JobState::Shed;
  else if (name == "quarantined") out = JobState::Quarantined;
  else return false;
  return true;
}

}  // namespace

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Completed: return "completed";
    case JobState::Cancelled: return "cancelled";
    case JobState::Shed: return "shed";
    case JobState::Quarantined: return "quarantined";
  }
  return "unknown";
}

std::string job_to_text(const JobRecord& r) {
  std::ostringstream out;
  out << kHeader << '\n';
  out << "id " << r.id << '\n';
  out << "tenant " << r.tenant << '\n';
  out << "state " << to_string(r.state) << '\n';
  out << "priority " << r.priority << '\n';
  out << "threads " << r.threads << '\n';
  out << "attempts " << r.attempts << '\n';
  out << "limits " << r.limits.wall_seconds << ' ' << r.limits.conflicts << ' '
      << r.limits.memory_mb << '\n';
  out << "certify " << (r.certify ? 1 : 0) << '\n';
  out << "spec-bytes " << r.spec_text.size() << '\n';
  out << r.spec_text << '\n';
  if (!r.error.empty()) {
    // The error line is single-line by format; flatten any embedded LF.
    std::string flat = r.error;
    for (char& c : flat) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    out << "error " << flat << '\n';
  }
  if (is_terminal(r.state)) {
    out << "result " << (r.complete ? 1 : 0) << ' ' << (r.certified ? 1 : 0)
        << ' ' << r.seconds << '\n';
    for (const pareto::Vec& p : r.front) {
      out << 'p';
      for (const std::int64_t v : p) out << ' ' << v;
      out << '\n';
    }
  }
  std::string text = out.str();
  text += "end " + std::to_string(fnv1a(text)) + "\n";
  return text;
}

std::string job_from_text(std::string_view text, JobRecord& out) {
  // Checksum first, like the checkpoint loader: nothing inside a torn file
  // is trusted, not even the header.
  const std::size_t end_pos = text.rfind("end ");
  if (end_pos == std::string_view::npos ||
      (end_pos != 0 && text[end_pos - 1] != '\n')) {
    return "job: missing checksum trailer";
  }
  std::string_view trailer = text.substr(end_pos + 4);
  if (!trailer.empty() && trailer.back() == '\n') trailer.remove_suffix(1);
  std::uint64_t expected = 0;
  if (!parse_u64(trailer, expected)) return "job: malformed checksum";
  if (fnv1a(text.substr(0, end_pos)) != expected) {
    return "job: checksum mismatch";
  }
  std::string_view body = text.substr(0, end_pos);

  auto next_line = [&body]() -> std::string_view {
    const std::size_t nl = body.find('\n');
    const std::string_view line = body.substr(0, nl);
    body = nl == std::string_view::npos ? std::string_view{}
                                        : body.substr(nl + 1);
    return line;
  };

  if (next_line() != kHeader) return "job: bad header";
  out = JobRecord{};
  bool saw_spec = false;
  while (!body.empty()) {
    std::string_view line = next_line();
    if (line.empty()) continue;
    std::string_view rest = line;
    const std::string_view key = take_token(rest);
    if (key == "id") {
      out.id = std::string(rest);
    } else if (key == "tenant") {
      out.tenant = std::string(rest);
    } else if (key == "state") {
      if (!state_from_name(rest, out.state)) return "job: unknown state";
    } else if (key == "priority") {
      if (!parse_i64(rest, out.priority)) return "job: bad priority";
    } else if (key == "threads") {
      std::uint64_t v = 0;
      if (!parse_u64(rest, v)) return "job: bad threads";
      out.threads = static_cast<std::size_t>(v);
    } else if (key == "attempts") {
      std::uint64_t v = 0;
      if (!parse_u64(rest, v)) return "job: bad attempts";
      out.attempts = static_cast<std::size_t>(v);
    } else if (key == "limits") {
      std::uint64_t conflicts = 0, mem = 0;
      if (!parse_f64(take_token(rest), out.limits.wall_seconds) ||
          !parse_u64(take_token(rest), conflicts) ||
          !parse_u64(take_token(rest), mem)) {
        return "job: bad limits";
      }
      out.limits.conflicts = conflicts;
      out.limits.memory_mb = static_cast<std::size_t>(mem);
    } else if (key == "certify") {
      out.certify = rest == "1";
    } else if (key == "spec-bytes") {
      std::uint64_t n = 0;
      if (!parse_u64(rest, n)) return "job: bad spec-bytes";
      if (body.size() < n + 1 || body[n] != '\n') {
        return "job: truncated spec payload";
      }
      out.spec_text = std::string(body.substr(0, n));
      body = body.substr(n + 1);
      saw_spec = true;
    } else if (key == "error") {
      out.error = std::string(rest);
    } else if (key == "result") {
      std::string_view c = take_token(rest);
      std::string_view cert = take_token(rest);
      out.complete = c == "1";
      out.certified = cert == "1";
      if (!parse_f64(take_token(rest), out.seconds)) {
        return "job: bad result line";
      }
    } else if (key == "p") {
      pareto::Vec p;
      while (!rest.empty()) {
        std::int64_t v = 0;
        if (!parse_i64(take_token(rest), v)) return "job: bad point line";
        p.push_back(v);
      }
      if (p.empty()) return "job: bad point line";
      out.front.push_back(std::move(p));
    } else {
      return "job: unknown line kind '" + std::string(key) + "'";
    }
  }
  if (out.id.empty()) return "job: missing id";
  if (!saw_spec) return "job: missing spec";
  if (!out.front.empty() && !is_terminal(out.state)) {
    return "job: front recorded for a non-terminal state";
  }
  return "";
}

std::string JobJournal::job_path(const std::string& id) const {
  return dir_ + "/" + id + ".job";
}

std::string JobJournal::checkpoint_path(const std::string& id) const {
  return dir_ + "/" + id + ".ckpt";
}

std::string JobJournal::save(const JobRecord& record, bool sync_fail) const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  return dse::atomic_write_file(job_path(record.id), job_to_text(record),
                                sync_fail);
}

std::vector<JobRecord> JobJournal::load_all(
    std::vector<std::string>* diagnostics) const {
  std::vector<JobRecord> records;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return records;
  for (const auto& entry : it) {
    if (!entry.is_regular_file() || entry.path().extension() != ".job") {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    JobRecord record;
    const std::string err = job_from_text(buffer.str(), record);
    if (!err.empty()) {
      if (diagnostics != nullptr) {
        diagnostics->push_back(entry.path().filename().string() + ": " + err);
      }
      continue;
    }
    records.push_back(std::move(record));
  }
  // Deterministic recovery order regardless of directory enumeration.
  std::sort(records.begin(), records.end(),
            [](const JobRecord& a, const JobRecord& b) { return a.id < b.id; });
  return records;
}

void JobJournal::remove(const std::string& id) const {
  std::error_code ec;
  std::filesystem::remove(job_path(id), ec);
  std::filesystem::remove(checkpoint_path(id), ec);
}

}  // namespace aspmt::serve
