#include "serve/protocol.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace aspmt::serve {

void Json::set(std::string key, Json value) {
  kind_ = Kind::Object;
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

const Json& Json::get(std::string_view key) const noexcept {
  static const Json kNull;
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  return kNull;
}

bool Json::has(std::string_view key) const noexcept {
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_value(const Json& j, std::string& out) {
  switch (j.kind()) {
    case Json::Kind::Null:
      out += "null";
      break;
    case Json::Kind::Bool:
      out += j.as_bool() ? "true" : "false";
      break;
    case Json::Kind::Int:
      out += std::to_string(j.as_int());
      break;
    case Json::Kind::Double: {
      const double d = j.as_double();
      if (!std::isfinite(d)) {
        out += "null";  // JSON has no inf/nan
        break;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out += buf;
      break;
    }
    case Json::Kind::String:
      dump_string(j.as_string(), out);
      break;
    case Json::Kind::Array: {
      out.push_back('[');
      bool first = true;
      for (const Json& v : j.items()) {
        if (!first) out.push_back(',');
        first = false;
        dump_value(v, out);
      }
      out.push_back(']');
      break;
    }
    case Json::Kind::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : j.members()) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(k, out);
        out.push_back(':');
        dump_value(v, out);
      }
      out.push_back('}');
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::string parse(Json& out) {
    const std::string err = value(out, 0);
    if (!err.empty()) return err;
    skip_ws();
    if (pos_ != text_.size()) return "json: trailing characters after value";
    return "";
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string value(Json& out, std::size_t depth) {
    if (depth > kMaxDepth) return "json: nesting too deep";
    skip_ws();
    if (pos_ >= text_.size()) return "json: unexpected end of input";
    const char c = text_[pos_];
    if (c == '{') return object(out, depth);
    if (c == '[') return array(out, depth);
    if (c == '"') {
      std::string s;
      const std::string err = string(s);
      if (!err.empty()) return err;
      out = Json(std::move(s));
      return "";
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out = Json();
      return "";
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out = Json(true);
      return "";
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out = Json(false);
      return "";
    }
    return number(out);
  }

  std::string number(Json& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool floating = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        floating = floating || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty()) return "json: unexpected character";
    if (!floating) {
      std::int64_t i = 0;
      const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (res.ec == std::errc{} && res.ptr == tok.data() + tok.size()) {
        out = Json(i);
        return "";
      }
    }
    double d = 0.0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc{} || res.ptr != tok.data() + tok.size()) {
      return "json: malformed number";
    }
    out = Json(d);
    return "";
  }

  std::string string(std::string& out) {
    if (!eat('"')) return "json: expected string";
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return "";
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return "json: truncated \\u escape";
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return "json: malformed \\u escape";
            }
          }
          // The protocol is ASCII-first; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return "json: unknown escape";
      }
    }
    return "json: unterminated string";
  }

  std::string array(Json& out, std::size_t depth) {
    (void)eat('[');
    out = Json::array();
    skip_ws();
    if (eat(']')) return "";
    for (;;) {
      Json v;
      const std::string err = value(v, depth + 1);
      if (!err.empty()) return err;
      out.push_back(std::move(v));
      skip_ws();
      if (eat(']')) return "";
      if (!eat(',')) return "json: expected ',' or ']'";
    }
  }

  std::string object(Json& out, std::size_t depth) {
    (void)eat('{');
    out = Json::object();
    skip_ws();
    if (eat('}')) return "";
    for (;;) {
      skip_ws();
      std::string key;
      const std::string kerr = string(key);
      if (!kerr.empty()) return kerr;
      skip_ws();
      if (!eat(':')) return "json: expected ':'";
      Json v;
      const std::string verr = value(v, depth + 1);
      if (!verr.empty()) return verr;
      out.set(std::move(key), std::move(v));
      skip_ws();
      if (eat('}')) return "";
      if (!eat(',')) return "json: expected ',' or '}'";
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

std::string Json::parse(std::string_view text, Json& out) {
  return Parser(text).parse(out);
}

}  // namespace aspmt::serve
