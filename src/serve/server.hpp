// The exploration service core: a bounded worker-pool scheduler over
// dse::Session jobs with admission control, overload shedding, crash-safe
// journaling and retry/backoff supervision.  Transport-agnostic — the unix
// socket endpoint (serve/endpoint.hpp) and the tests drive the same API.
//
// Robustness model (DESIGN.md §15):
//
//  * Admission.  submit() is the only way in.  A job is rejected — with a
//    structured reason, never a hang — when the daemon is draining, the
//    spec does not parse, the bounded queue is full, or the tenant already
//    holds `tenant_quota` live (queued + running) jobs.  After every
//    admission the shed scan runs: while queue depth exceeds
//    `shed_watermark` (or peak RSS exceeds `rss_watermark_mb`), queued jobs
//    are shed newest-lowest-priority first and report state `shed`.
//
//  * Journal.  Every accepted job and every state transition is persisted
//    through JobJournal (atomic + fsync'd, checksummed).  start() replays
//    the journal: terminal jobs stay queryable, queued/running jobs are
//    re-admitted, and a re-run job resumes from its periodic exploration
//    checkpoint — so SIGKILL at any instant loses at most one checkpoint
//    interval of work and never the queue.
//
//  * Supervision.  Each attempt runs under a fresh dse::Budget derived
//    from the job's limits (wall deadline, conflict cap, RSS ceiling).  An
//    attempt that throws (or dies to total worker failure) is requeued
//    after the shared capped-exponential-backoff policy (dse/supervise.hpp)
//    and quarantined once the circuit opens.  Cancellation is sticky and
//    wins every race against a retry.
//
//  * Drain.  drain() stops admission, lets running jobs finish within the
//    grace window, then interrupts them — the explorer writes its final
//    checkpoint and the job re-journals as queued, ready for the next
//    daemon — joins the pool and flushes the journal and sink.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dse/session.hpp"
#include "dse/supervise.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "serve/journal.hpp"
#include "util/timer.hpp"

namespace aspmt::serve {

struct ServerOptions {
  /// Journal directory; "" disables crash safety (unit tests).
  std::string journal_dir;
  /// Concurrent jobs (each job may itself run a small portfolio).
  std::size_t workers = 2;
  /// Admission bound on queued jobs; beyond it submit() rejects.
  std::size_t max_queue_depth = 64;
  /// Shedding starts once queued jobs exceed this (must be < queue depth
  /// to be meaningful).
  std::size_t shed_watermark = 48;
  /// Shedding also triggers when peak RSS exceeds this (MiB; 0 = off).
  std::size_t rss_watermark_mb = 0;
  /// Live (queued + running) jobs one tenant may hold; beyond it the
  /// tenant's submits are rejected with `overload`.
  std::size_t tenant_quota = 8;
  /// Cap on any single job's portfolio threads.
  std::size_t max_job_threads = 4;
  /// Periodic in-flight checkpoints (crash-safety granularity).
  double checkpoint_interval_seconds = 0.5;
  /// Applied when a request carries no wall limit (0 = unlimited).
  double default_time_limit_seconds = 0.0;
  /// Running jobs get this long to finish naturally on drain before their
  /// budgets are interrupted.
  double drain_grace_seconds = 5.0;
  /// Retry/backoff/circuit-breaker policy for failed attempts.
  dse::RetryPolicy retry;
  /// Seed for deterministic backoff jitter.
  std::uint64_t seed = 1;
  /// Daemon-level observability (JobAdmit/JobShed/JobRequeue/... events).
  obs::EventSink* sink = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct JobRequest {
  std::string tenant = "default";
  std::string spec_text;        ///< synth::parse_specification input
  std::int64_t priority = 0;    ///< higher runs first, sheds last
  std::size_t threads = 1;      ///< portfolio width (clamped to the cap)
  dse::BudgetLimits limits;     ///< per-attempt ceilings
  bool certify = false;
  /// Test hook: runs at the start of each attempt (1-based); a throw counts
  /// as that attempt's failure.  Not journaled — recovered jobs run without.
  std::function<void(std::size_t attempt)> before_attempt;
};

struct SubmitOutcome {
  bool accepted = false;
  std::string job_id;           ///< set iff accepted
  /// "overload" (queue/quota), "draining", or "invalid-spec".
  std::string reject_reason;
  std::string detail;           ///< human-readable specifics
};

/// Streamed to per-job subscribers (endpoint connections, tests).
struct JobEvent {
  enum class Kind : std::uint8_t {
    FrontDelta,   ///< point entered the job's archive
    Progress,     ///< periodic conflict/propagation sample
    Checkpoint,   ///< in-flight checkpoint written
    Requeue,      ///< failed attempt scheduled for retry
    Done,         ///< terminal state reached
  };
  Kind kind = Kind::Progress;
  std::string job_id;
  std::vector<std::int64_t> payload;  ///< kind-specific (see endpoint)
  JobState state = JobState::Queued;  ///< Done only
};

struct ServerStats {
  std::size_t queued = 0;
  std::size_t running = 0;
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  std::size_t shed = 0;
  std::size_t quarantined = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;   ///< all rejections (overload + other)
  std::uint64_t retries = 0;
  bool draining = false;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Replay the journal and spawn the worker pool.  Returns recovery
  /// diagnostics (corrupt journal entries skipped), empty on a clean start.
  std::vector<std::string> start();

  [[nodiscard]] SubmitOutcome submit(JobRequest request);

  /// Request cancellation; wins against queued, running and retrying jobs.
  /// Returns false for unknown ids.
  bool cancel(const std::string& job_id);

  /// Snapshot of the job's journal record; `known == false` for foreign ids.
  struct StatusResult {
    bool known = false;
    JobRecord record;
  };
  [[nodiscard]] StatusResult status(const std::string& job_id) const;

  /// Block until the job is terminal or `timeout_seconds` elapses
  /// (<= 0 = wait forever).  Returns the final status (known == false on
  /// foreign id, record.state non-terminal on timeout).
  [[nodiscard]] StatusResult wait(const std::string& job_id,
                                  double timeout_seconds = 0.0);

  /// Register a callback for the job's stream events.  The callback runs
  /// on collector/worker threads — it must be fast and thread-safe.
  /// Returns false for unknown ids (terminal jobs still accept and get an
  /// immediate Done).
  bool subscribe(const std::string& job_id,
                 std::function<void(const JobEvent&)> callback);

  [[nodiscard]] ServerStats stats() const;

  /// Graceful shutdown (see file comment).  Idempotent.
  void drain();

  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Job {
    JobRecord record;
    JobRequest request;
    std::uint64_t seq = 0;
    double ready_at = 0.0;  ///< backoff gate (epoch seconds)
    bool cancel_requested = false;
    std::shared_ptr<dse::Session> session;
    std::shared_ptr<obs::EventSink> adapter;  ///< per-job event router
    std::vector<std::function<void(const JobEvent&)>> subscribers;
  };

  void worker_loop(std::size_t worker_index);
  /// Pick the runnable job (highest priority, then lowest seq) whose
  /// backoff gate elapsed.  Caller holds mutex_.
  [[nodiscard]] std::shared_ptr<Job> pick_locked(double now);
  void shed_overloaded_locked();
  void journal_locked(Job& job);
  void emit(obs::EventKind kind, std::int64_t a, std::int64_t b,
            std::int64_t c);
  /// Queue `event` for the job's subscribers; delivered by flush_events()
  /// once the caller has released mutex_ (callbacks never run under it).
  void publish_locked(Job& job, JobEvent event);
  void flush_events();
  /// Direct delivery path for the per-job collector threads (no lock held).
  void publish_by_id(const std::string& job_id, const JobEvent& event);
  void finish_job_locked(Job& job, JobState state);
  [[nodiscard]] std::size_t queued_count_locked() const;
  [[nodiscard]] std::size_t tenant_live_locked(const std::string& tenant) const;
  void update_gauges_locked();

  class JobSinkAdapter;

  ServerOptions options_;
  JobJournal journal_;
  bool journaling_ = false;
  bool sync_fail_ = false;  ///< armed from ASPMT_FAULT_INJECT at start()

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers: new work / drain
  std::condition_variable done_cv_;   ///< waiters: job reached terminal
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  std::vector<std::thread> pool_;
  dse::RetrySupervisor supervisor_;
  util::Timer epoch_;
  std::uint64_t next_seq_ = 1;
  std::size_t running_ = 0;
  bool draining_ = false;
  bool drained_ = false;
  bool started_ = false;
  std::vector<std::pair<std::vector<std::function<void(const JobEvent&)>>,
                        JobEvent>>
      pending_events_;  ///< publish_locked queue, drained by flush_events

  std::mutex sink_mutex_;  ///< serializes daemon-level sink callbacks
  ServerStats counters_;   ///< cumulative counters (guarded by mutex_)
};

}  // namespace aspmt::serve
