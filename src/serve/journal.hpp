// Crash-safe job journal for the exploration service.
//
// Every accepted job is persisted as one `<id>.job` file in the journal
// directory, rewritten on each state transition with the same durability
// discipline as checkpoint v4: serialize, write to a tmp file, fsync,
// rename, fsync the directory, with an FNV-1a checksum trailer the loader
// verifies before trusting anything.  A daemon killed at any instant
// therefore restarts into a consistent queue: terminal jobs keep their
// recorded fronts, queued and running jobs are re-admitted and re-run, and
// running jobs additionally resume from their periodic `<id>.ckpt`
// exploration checkpoint (dse/checkpoint.hpp) so progress survives the
// kill.  A torn or corrupted journal entry is skipped with a diagnostic —
// it degrades that one job to "unknown", never poisons the daemon.
//
// Format (`aspmt-job 1`, text, LF):
//   aspmt-job 1
//   id <string>                     job identifier (journal file stem)
//   tenant <string>
//   state <queued|running|completed|cancelled|shed|quarantined>
//   priority <int>
//   threads <n>
//   attempts <n>
//   limits <wall_seconds> <conflicts> <memory_mb>
//   certify <0|1>
//   spec-bytes <n>                  exactly n raw spec bytes follow, then \n
//   <spec text>
//   error <message>                 optional, single line
//   result <complete> <certified> <seconds>   terminal states only
//   p <l> <e> <c>                   one per front point, terminal only
//   end <fnv1a-of-everything-above>
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dse/budget.hpp"
#include "pareto/point.hpp"

namespace aspmt::serve {

enum class JobState : std::uint8_t {
  Queued = 0,
  Running,
  Completed,   ///< terminal: ran to a front (possibly partial — see Record)
  Cancelled,   ///< terminal: client cancel
  Shed,        ///< terminal: load-shed before running
  Quarantined, ///< terminal: retry budget exhausted
};

[[nodiscard]] const char* to_string(JobState state) noexcept;

/// True for states that will never transition again.
[[nodiscard]] constexpr bool is_terminal(JobState s) noexcept {
  return s != JobState::Queued && s != JobState::Running;
}

struct JobRecord {
  std::string id;
  std::string tenant;
  JobState state = JobState::Queued;
  std::int64_t priority = 0;
  std::size_t threads = 1;
  std::size_t attempts = 0;
  dse::BudgetLimits limits;
  bool certify = false;
  std::string spec_text;  ///< canonical spec text (synth/specio.hpp)
  std::string error;      ///< last failure / shed / quarantine diagnostic

  // Terminal result (Completed / the front computed so far elsewhere).
  bool complete = false;   ///< front proven exact
  bool certified = false;  ///< machine-checked certificate
  double seconds = 0.0;
  std::vector<pareto::Vec> front;
};

/// Serialize to the `aspmt-job 1` format (checksum trailer included).
[[nodiscard]] std::string job_to_text(const JobRecord& record);

/// Parse + verify job_to_text output.  Returns "" on success, a diagnostic
/// otherwise.
[[nodiscard]] std::string job_from_text(std::string_view text, JobRecord& out);

/// Directory of `<id>.job` entries plus per-job exploration checkpoints.
class JobJournal {
 public:
  explicit JobJournal(std::string dir) : dir_(std::move(dir)) {}

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::string job_path(const std::string& id) const;
  [[nodiscard]] std::string checkpoint_path(const std::string& id) const;

  /// Durably persist `record` (atomic write + fsync; see file comment).
  /// A "durability degraded" diagnostic means the record IS on disk but an
  /// fsync failed; callers surface it as a warning, not a failure.
  [[nodiscard]] std::string save(const JobRecord& record,
                                 bool sync_fail = false) const;

  /// Load every parseable `.job` entry; unreadable ones are skipped and
  /// reported in `diagnostics` (when non-null).
  [[nodiscard]] std::vector<JobRecord> load_all(
      std::vector<std::string>* diagnostics = nullptr) const;

  /// Remove the journal entry and checkpoint of `id` (best effort).
  void remove(const std::string& id) const;

 private:
  std::string dir_;
};

}  // namespace aspmt::serve
