#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace aspmt::serve {

Client::~Client() { close(); }

std::string Client::connect(const std::string& socket_path) {
  close();
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return "socket path too long";
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return "cannot create socket";
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string err =
        "cannot connect to '" + socket_path + "': " + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return err;
  }
  return "";
}

std::string Client::send(const Json& req) {
  if (fd_ < 0) return "not connected";
  std::string line = req.dump();
  line.push_back('\n');
  std::size_t off = 0;
  while (off < line.size()) {
    const ::ssize_t n =
        ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::string("send failed: ") + std::strerror(errno);
    }
    off += static_cast<std::size_t>(n);
  }
  return "";
}

std::string Client::read_line(std::string& out) {
  if (fd_ < 0) return "not connected";
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      out = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return "";
    }
    char chunk[4096];
    const ::ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::string("recv failed: ") + std::strerror(errno);
    }
    if (n == 0) return "eof";
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Client::request(const Json& req, Json& response) {
  std::string err = send(req);
  if (!err.empty()) return err;
  std::string line;
  err = read_line(line);
  if (!err.empty()) return err;
  return Json::parse(line, response);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace aspmt::serve
