// Unix-domain-socket transport for the exploration service.
//
// One listener thread accepts connections; each connection gets a reader
// thread speaking the line-delimited JSON protocol (serve/protocol.hpp,
// grammar in DESIGN.md §15) against the transport-agnostic Server.
// Responses and streamed job events share the connection through a
// mutex-guarded writer, so a subscription callback firing from a
// collector thread can never interleave bytes with a response.
//
// TCP transport is explicitly deferred (ROADMAP): everything above the
// accept/connect pair is transport-neutral, so lifting to AF_INET means
// swapping this file's listener only.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"

namespace aspmt::serve {

class SocketEndpoint {
 public:
  /// `on_drain` runs (once) when a client issues the drain op — the daemon
  /// uses it to leave its main wait loop; the endpoint itself keeps
  /// serving until stop().
  SocketEndpoint(Server& server, std::string socket_path,
                 std::function<void()> on_drain = nullptr);
  ~SocketEndpoint();

  SocketEndpoint(const SocketEndpoint&) = delete;
  SocketEndpoint& operator=(const SocketEndpoint&) = delete;

  /// Bind + listen + spawn the accept loop.  Returns "" on success, a
  /// diagnostic otherwise.  An existing socket file is replaced (the
  /// daemon owns its path; a stale file from a killed predecessor must
  /// not block restart).
  [[nodiscard]] std::string start();

  /// Stop accepting, shut down live connections, join all threads.
  /// Idempotent.
  void stop();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return socket_path_;
  }

 private:
  /// Shared, mutex-guarded connection writer; survives the connection so
  /// a late subscription callback degrades to a no-op instead of writing
  /// to a recycled fd.
  struct ConnWriter {
    std::mutex mutex;
    int fd = -1;
    bool closed = false;

    void write_line(const std::string& line);
    void close();
  };

  void accept_loop();
  void serve_connection(int fd);
  [[nodiscard]] std::string handle_request(
      const std::string& line, const std::shared_ptr<ConnWriter>& writer);

  Server& server_;
  std::string socket_path_;
  std::function<void()> on_drain_;
  // Atomic because stop() retires the fd from the caller's thread while
  // accept_loop() is still blocked on / about to call accept() with it.
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<ConnWriter>> conns_;
  std::vector<std::thread> conn_threads_;
  bool started_ = false;
};

}  // namespace aspmt::serve
