// aspmt_served — the crash-safe exploration service (DESIGN.md §15).
//
//   aspmt_served serve   --socket PATH --journal DIR [--workers N]
//                        [--queue-depth N] [--shed-watermark N]
//                        [--tenant-quota N] [--max-job-threads N]
//                        [--checkpoint-interval SEC] [--rss-watermark-mb MB]
//                        [--drain-grace SEC] [--seed S] [--events-out FILE]
//                        [--metrics-out FILE]
//   aspmt_served submit  spec.txt --socket PATH [--tenant T] [--priority P]
//                        [--threads N] [--time-limit SEC]
//                        [--conflict-budget N] [--mem-limit-mb MB]
//                        [--certify] [--stream] [--no-wait]
//                        [--front-out FILE]
//   aspmt_served status  --socket PATH --job ID
//   aspmt_served result  --socket PATH --job ID [--timeout SEC]
//                        [--front-out FILE]
//   aspmt_served cancel  --socket PATH --job ID
//   aspmt_served stats   --socket PATH
//   aspmt_served drain   --socket PATH
//
// Exit codes (submit/result): 0 job completed with a complete front,
// 3 terminal but partial (deadline/cancel/shed/quarantine), 5 rejected at
// admission ("rejected: overload" and friends — structured, never a hang).
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporters.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/endpoint.hpp"
#include "serve/server.hpp"

namespace {

using namespace aspmt;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> named;
  bool flag(const std::string& name) const { return named.count(name) != 0; }
  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = named.find(name);
    return it == named.end() ? fallback : it->second;
  }
  double num(const std::string& name, double fallback) const {
    const auto it = named.find(name);
    return it == named.end() ? fallback : std::stod(it->second);
  }
  std::int64_t i64(const std::string& name, std::int64_t fallback) const {
    const auto it = named.find(name);
    return it == named.end() ? fallback : std::stoll(it->second);
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      const std::size_t eq = a.find('=');
      if (eq != std::string::npos) {
        args.named[a.substr(2, eq - 2)] = a.substr(eq + 1);
        continue;
      }
      const std::string key = a.substr(2);
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.named[key] = argv[++i];
      } else {
        args.named[key] = "";
      }
    } else {
      args.positional.push_back(std::move(a));
    }
  }
  return args;
}

int usage() {
  std::cerr <<
      "usage:\n"
      "  aspmt_served serve  --socket PATH --journal DIR [--workers N]\n"
      "          [--queue-depth N] [--shed-watermark N] [--tenant-quota N]\n"
      "          [--max-job-threads N] [--checkpoint-interval SEC]\n"
      "          [--rss-watermark-mb MB] [--drain-grace SEC] [--seed S]\n"
      "          [--events-out FILE] [--metrics-out FILE]\n"
      "  aspmt_served submit spec.txt --socket PATH [--tenant T]\n"
      "          [--priority P] [--threads N] [--time-limit SEC]\n"
      "          [--conflict-budget N] [--mem-limit-mb MB] [--certify]\n"
      "          [--stream] [--no-wait] [--front-out FILE]\n"
      "  aspmt_served status --socket PATH --job ID\n"
      "  aspmt_served result --socket PATH --job ID [--timeout SEC]\n"
      "          [--front-out FILE]\n"
      "  aspmt_served cancel --socket PATH --job ID\n"
      "  aspmt_served stats  --socket PATH\n"
      "  aspmt_served drain  --socket PATH\n";
  return 2;
}

/// SIGTERM/SIGINT ask for a graceful drain; the main loop polls the flag
/// (only atomics in the handler).
std::atomic<int> g_drain_requested{0};

extern "C" void handle_drain_signal(int) { g_drain_requested.store(1); }

int cmd_serve(const Args& args) {
  const std::string socket_path = args.get("socket", "");
  const std::string journal_dir = args.get("journal", "");
  if (socket_path.empty() || journal_dir.empty()) {
    std::cerr << "serve requires --socket and --journal\n";
    return 2;
  }

  obs::MetricsRegistry metrics;
  std::unique_ptr<std::ofstream> events_file;
  std::unique_ptr<obs::NdjsonExporter> events;
  if (args.flag("events-out")) {
    events_file =
        std::make_unique<std::ofstream>(args.get("events-out", ""));
    if (!*events_file) {
      std::cerr << "cannot write '" << args.get("events-out", "") << "'\n";
      return 2;
    }
    events = std::make_unique<obs::NdjsonExporter>(*events_file);
  }

  serve::ServerOptions opts;
  opts.journal_dir = journal_dir;
  opts.workers = static_cast<std::size_t>(args.i64("workers", 2));
  opts.max_queue_depth =
      static_cast<std::size_t>(args.i64("queue-depth", 64));
  opts.shed_watermark =
      static_cast<std::size_t>(args.i64("shed-watermark", 48));
  opts.rss_watermark_mb =
      static_cast<std::size_t>(args.i64("rss-watermark-mb", 0));
  opts.tenant_quota = static_cast<std::size_t>(args.i64("tenant-quota", 8));
  opts.max_job_threads =
      static_cast<std::size_t>(args.i64("max-job-threads", 4));
  opts.checkpoint_interval_seconds = args.num("checkpoint-interval", 0.5);
  opts.default_time_limit_seconds = args.num("default-time-limit", 0.0);
  opts.drain_grace_seconds = args.num("drain-grace", 5.0);
  opts.seed = static_cast<std::uint64_t>(args.i64("seed", 1));
  opts.sink = events.get();
  opts.metrics = &metrics;

  serve::Server server(std::move(opts));
  const std::vector<std::string> recovery = server.start();
  for (const std::string& diag : recovery) {
    std::cerr << "recovery: " << diag << "\n";
  }

  serve::SocketEndpoint endpoint(server, socket_path,
                                 [] { g_drain_requested.store(1); });
  const std::string err = endpoint.start();
  if (!err.empty()) {
    std::cerr << "aspmt_served: " << err << "\n";
    server.drain();
    return 1;
  }

  std::signal(SIGTERM, handle_drain_signal);
  std::signal(SIGINT, handle_drain_signal);

  // The smoke tests wait for this line before connecting.
  std::cout << "aspmt_served: listening on " << socket_path << std::endl;

  while (g_drain_requested.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::cout << "aspmt_served: draining" << std::endl;
  server.drain();
  endpoint.stop();

  const std::string metrics_path = args.get("metrics-out", "");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    out << metrics.to_json();
  }
  std::cout << "aspmt_served: drained" << std::endl;
  return 0;
}

/// One point per line, objectives space-separated — the same .front golden
/// format `aspmt_dse explore --front-out` writes.
std::string front_json_to_text(const serve::Json& front) {
  std::ostringstream out;
  for (const serve::Json& point : front.items()) {
    const auto& values = point.items();
    for (std::size_t i = 0; i < values.size(); ++i) {
      out << (i ? " " : "") << values[i].as_int();
    }
    out << "\n";
  }
  return out.str();
}

/// Shared terminal-status plumbing for submit/result: report, optionally
/// write the front, map the state to the exit-code contract.
int finish_job(const Args& args, const serve::Json& status) {
  const std::string state = status.get("state").as_string();
  std::cout << "job " << status.get("job").as_string() << ": " << state;
  if (status.has("complete")) {
    std::cout << (status.get("complete").as_bool() ? " (complete" : " (partial");
    if (status.get("certified").as_bool()) std::cout << ", certified";
    std::cout << ", " << status.get("front").items().size() << " points)";
  }
  std::cout << "\n";
  if (status.has("error") && !status.get("error").as_string().empty()) {
    std::cerr << "error: " << status.get("error").as_string() << "\n";
  }
  const std::string front_path = args.get("front-out", "");
  if (!front_path.empty() && status.has("front")) {
    std::ofstream out(front_path);
    if (!out) {
      std::cerr << "cannot write '" << front_path << "'\n";
      return 1;
    }
    out << front_json_to_text(status.get("front"));
    std::cout << "wrote front to " << front_path << "\n";
  }
  if (state == "completed" && status.get("complete").as_bool()) return 0;
  return 3;
}

int cmd_submit(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "submit requires a spec file\n";
    return 2;
  }
  std::ifstream in(args.positional.front(), std::ios::binary);
  if (!in) {
    std::cerr << "cannot read '" << args.positional.front() << "'\n";
    return 2;
  }
  std::ostringstream spec;
  spec << in.rdbuf();

  serve::Client client;
  std::string err = client.connect(args.get("socket", ""));
  if (!err.empty()) {
    std::cerr << err << "\n";
    return 1;
  }

  const bool stream = args.flag("stream");
  serve::Json req = serve::Json::object();
  req.set("op", "submit");
  req.set("spec", spec.str());
  if (args.flag("tenant")) req.set("tenant", args.get("tenant", ""));
  req.set("priority", args.i64("priority", 0));
  req.set("threads", args.i64("threads", 1));
  req.set("time_limit", args.num("time-limit", 0.0));
  req.set("conflicts", args.i64("conflict-budget", 0));
  req.set("mem_mb", args.i64("mem-limit-mb", 0));
  req.set("certify", args.flag("certify"));
  req.set("stream", stream);

  serve::Json ack;
  err = client.request(req, ack);
  if (!err.empty()) {
    std::cerr << err << "\n";
    return 1;
  }
  if (!ack.get("ok").as_bool()) {
    // The structured admission outcome: "rejected: overload" is the
    // contract scripts grep for (never a hang, never a bare disconnect).
    std::cout << "rejected: " << ack.get("rejected").as_string() << "\n";
    if (ack.has("detail")) {
      std::cerr << ack.get("detail").as_string() << "\n";
    }
    return 5;
  }
  const std::string job_id = ack.get("job").as_string();
  std::cout << "accepted " << job_id << "\n";
  if (args.flag("no-wait")) return 0;

  if (stream) {
    // Events arrive on this connection until the terminal "done" line.
    for (;;) {
      std::string line;
      err = client.read_line(line);
      if (!err.empty()) {
        std::cerr << (err == "eof" ? "daemon closed the stream" : err) << "\n";
        return 3;
      }
      serve::Json event;
      if (!serve::Json::parse(line, event).empty()) continue;
      std::cout << line << "\n";
      if (event.get("event").as_string() == "done") {
        return finish_job(args, event);
      }
    }
  }

  serve::Json wait_req = serve::Json::object();
  wait_req.set("op", "result");
  wait_req.set("job", job_id);
  serve::Json status;
  err = client.request(wait_req, status);
  if (!err.empty()) {
    std::cerr << err << "\n";
    return 1;
  }
  if (!status.get("ok").as_bool()) {
    std::cerr << status.get("error").as_string() << "\n";
    return 1;
  }
  return finish_job(args, status);
}

int cmd_simple(const Args& args, const std::string& op) {
  serve::Client client;
  std::string err = client.connect(args.get("socket", ""));
  if (!err.empty()) {
    std::cerr << err << "\n";
    return 1;
  }
  serve::Json req = serve::Json::object();
  req.set("op", op);
  if (args.flag("job")) req.set("job", args.get("job", ""));
  if (op == "result") {
    const double timeout = args.num("timeout", 0.0);
    if (timeout > 0.0) req.set("timeout", timeout);
  }
  serve::Json response;
  err = client.request(req, response);
  if (!err.empty()) {
    std::cerr << err << "\n";
    return 1;
  }
  if (!response.get("ok").as_bool() && response.has("error")) {
    std::cerr << response.get("error").as_string() << "\n";
    return 1;
  }
  if (op == "status" || op == "result") {
    const std::string state = response.get("state").as_string();
    if (state == "queued" || state == "running") {
      std::cout << "job " << response.get("job").as_string() << ": " << state
                << " (attempt " << response.get("attempts").as_int() << ")\n";
      return op == "result" ? 3 : 0;  // result timed out short of terminal
    }
    const int rc = finish_job(args, response);
    return op == "status" ? 0 : rc;
  }
  std::cout << response.dump() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args = parse_args(argc, argv);
  try {
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "submit") return cmd_submit(args);
    if (cmd == "status") return cmd_simple(args, "status");
    if (cmd == "result") return cmd_simple(args, "result");
    if (cmd == "cancel") return cmd_simple(args, "cancel");
    if (cmd == "stats") return cmd_simple(args, "stats");
    if (cmd == "drain") return cmd_simple(args, "drain");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
