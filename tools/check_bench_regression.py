#!/usr/bin/env python3
"""Guard against throughput regressions in BENCH_*.json reports.

Compares every `*_per_sec` metric shared between a recorded baseline and one
or more fresh reports; fails if the best (maximum) current value for any
metric falls more than TOLERANCE below its baseline.  Absolute wall times are
ignored and only the best of N runs is gated because single-run throughput on
shared CI machines is noisy; the baseline is recorded as the elementwise
*minimum* over repeated runs (a conservative floor), so a sustained drop is a
real regression while scheduler jitter is not.

Usage:
  check_bench_regression.py BASELINE.json CURRENT.json [CURRENT2.json ...]
  check_bench_regression.py --record OUT.json RUN1.json [RUN2.json ...]

The --record mode writes OUT.json as RUN1 with every *_per_sec metric
replaced by the elementwise minimum across all RUN files — this is how
bench/baselines/BENCH_propagate.json is produced.

Env:   ASPMT_BENCH_TOLERANCE  fractional drop allowed (default 0.02 = 2%)
Exit codes: 0 ok, 1 regression, 2 usage/IO error.
"""
import json
import os
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_regression: cannot read {path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc.get("metrics"), dict):
        print(f"check_bench_regression: {path} has no metrics object",
              file=sys.stderr)
        sys.exit(2)
    return doc


def rate_keys(metrics):
    return {k for k, v in metrics.items()
            if k.endswith("_per_sec") and isinstance(v, (int, float))}


def record(out_path, run_paths):
    runs = [load(p) for p in run_paths]
    doc = runs[0]
    keys = set.intersection(*(rate_keys(r["metrics"]) for r in runs))
    for key in sorted(keys):
        doc["metrics"][key] = min(r["metrics"][key] for r in runs)
    doc.setdefault("notes", {})["baseline"] = (
        f"elementwise min of *_per_sec over {len(runs)} run(s)")
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"check_bench_regression: recorded {out_path} "
          f"from {len(runs)} run(s)")


def main():
    argv = sys.argv[1:]
    if len(argv) >= 2 and argv[0] == "--record":
        record(argv[1], argv[2:] or sys.exit(2))
        return
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    tolerance = float(os.environ.get("ASPMT_BENCH_TOLERANCE", "0.02"))

    baseline = load(argv[0])["metrics"]
    currents = [load(p)["metrics"] for p in argv[1:]]
    keys = sorted(set.intersection(rate_keys(baseline),
                                   *(rate_keys(c) for c in currents)))
    if not keys:
        print("check_bench_regression: no shared *_per_sec metrics to compare",
              file=sys.stderr)
        sys.exit(2)

    regressions = []
    for key in keys:
        base = baseline[key]
        if base <= 0:
            continue
        best = max(c[key] for c in currents)
        ratio = best / base
        status = "ok"
        if ratio < 1.0 - tolerance:
            status = "REGRESSION"
            regressions.append(key)
        print(f"  {key:32s} baseline={base:14.0f} best-of-{len(currents)}="
              f"{best:14.0f} ({(ratio - 1.0) * 100.0:+6.1f}%) {status}")

    if regressions:
        print(f"check_bench_regression: FAIL: {len(regressions)} metric(s) "
              f"regressed more than {tolerance * 100.0:.0f}%: "
              f"{', '.join(regressions)}", file=sys.stderr)
        sys.exit(1)
    print(f"check_bench_regression: OK: {len(keys)} metric(s) within "
          f"{tolerance * 100.0:.0f}% of baseline")


if __name__ == "__main__":
    main()
