// aspmt_dse — command line front-end.
//
//   aspmt_dse generate --tasks 8 --arch mesh2x2 [--seed 1] [--options 2] -o spec.txt
//   aspmt_dse explore  spec.txt [--time-limit 60] [--archive quadtree|linear]
//                      [--no-partial-eval] [--epsilon L,E,C] [--witnesses]
//   aspmt_dse optimize spec.txt --objective latency|energy|cost
//   aspmt_dse baseline spec.txt --method enum|lex|lex-cold [--time-limit 60]
//   aspmt_dse nsga2    spec.txt [--pop 40] [--gens 60] [--seed 1]
//   aspmt_dse validate spec.txt
//   aspmt_dse asp      program.lp [--models N]      (non-ground ASP solving)
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstring>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <fstream>

#include <unistd.h>

#include "asp/grounder.hpp"
#include "asp/unfounded.hpp"
#include "dse/baselines.hpp"
#include "dse/budget.hpp"
#include "dse/checkpoint.hpp"
#include "dse/context.hpp"
#include "dse/distributed.hpp"
#include "dse/explorer.hpp"
#include "dse/optimizer.hpp"
#include "dse/parallel_explorer.hpp"
#include "dse/warmstart.hpp"
#include "ea/nsga2.hpp"
#include "gen/generator.hpp"
#include "gen/multicore.hpp"
#include "obs/exporters.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "synth/specio.hpp"
#include "synth/validator.hpp"
#include "util/table.hpp"

namespace {

using namespace aspmt;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> named;
  /// Non-empty when a removed flag was used; main() reports it and exits 2.
  std::string removed_flag_error;
  bool flag(const std::string& name) const { return named.count(name) != 0; }
  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = named.find(name);
    return it == named.end() ? fallback : it->second;
  }
  double num(const std::string& name, double fallback) const {
    const auto it = named.find(name);
    return it == named.end() ? fallback : std::stod(it->second);
  }
  std::int64_t i64(const std::string& name, std::int64_t fallback) const {
    const auto it = named.find(name);
    return it == named.end() ? fallback : std::stoll(it->second);
  }
};

/// The budget of the currently running exploration, visible to the signal
/// handlers.  Budget::interrupt() is async-signal-safe (atomics only).
dse::Budget* g_budget = nullptr;

extern "C" void handle_stop_signal(int) {
  dse::Budget* b = g_budget;
  if (b != nullptr) b->interrupt();
}

/// Installs SIGINT/SIGTERM handlers that trip the run's cancellation token
/// — the first Ctrl-C degrades to an orderly partial-front shutdown — and
/// restores the default disposition on scope exit, so a second Ctrl-C after
/// the run still kills a wedged process.
struct SignalGuard {
  explicit SignalGuard(dse::Budget* budget) {
    g_budget = budget;
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
  }
  ~SignalGuard() {
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_budget = nullptr;
  }
  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      // Both spellings work: `--key value` and `--key=value`.
      const std::size_t eq = a.find('=');
      if (eq != std::string::npos) {
        args.named[a.substr(2, eq - 2)] = a.substr(eq + 1);
        continue;
      }
      const std::string key = a.substr(2);
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.named[key] = argv[++i];
      } else {
        args.named[key] = "";
      }
    } else if (a == "-o" && i + 1 < argc) {
      args.named["out"] = argv[++i];
    } else {
      args.positional.push_back(std::move(a));
    }
  }
  // Output-file flags follow the --<thing>-out convention.  The
  // pre-redesign spellings were deprecated aliases for several releases and
  // are now hard errors naming their replacement.
  static const std::pair<const char*, const char*> kRemoved[] = {
      {"proof", "proof-out"},
      {"checkpoint", "checkpoint-out"},
  };
  for (const auto& [old_name, new_name] : kRemoved) {
    if (args.named.count(old_name) == 0) continue;
    args.removed_flag_error = std::string("--") + old_name +
                              " was removed; use --" + new_name;
    break;
  }
  return args;
}

int usage() {
  std::cerr <<
      "usage:\n"
      "  aspmt_dse generate --tasks N --arch bus|mesh2x2|mesh3x3 [--seed S]\n"
      "            [--options K] [--bus-procs P] -o spec.txt\n"
      "  aspmt_dse generate --family multicore --tasks N [--seed S]\n"
      "            [--big B] [--little L] [--depths D] [--caches C]\n"
      "            [--options K] [--throttle-factor F]\n"
      "            [--axes 'EXPR;EXPR;...']  Pareto axes, e.g.\n"
      "                'lex(latency,energy);cost' (default) or\n"
      "                'minmax(latency,cost);worst(energy,energy@throttle)'\n"
      "  aspmt_dse explore  spec.txt [--time-limit SEC] [--archive KIND]\n"
      "            [--no-partial-eval] [--epsilon L,E,C] [--witnesses]\n"
      "            [--threads N] [--seed S]   (N>0: parallel portfolio)\n"
      "            [--certify] [--proof-out FILE] [--front-out FILE]\n"
      "            [--conflict-budget N] [--mem-limit-mb MB]\n"
      "            [--checkpoint-out FILE] [--checkpoint-interval SEC]\n"
      "            [--resume FILE]\n"
      "            [--reexplore-from FILE]  incremental re-exploration: reuse a\n"
      "                                  previous session's checkpoint against an\n"
      "                                  edited spec (archive + clauses + slices)\n"
      "            [--warm-start nsga2|sampler|off] [--warm-start-budget N]\n"
      "            [--warm-start-seed S]  (heuristic seeds; still exact+certifiable)\n"
      "            [--trace-out FILE]    Chrome trace_event JSON (Perfetto)\n"
      "            [--events-out FILE]   NDJSON event log\n"
      "            [--metrics-out FILE]  metrics snapshot JSON\n"
      "            [--progress]          live status line on stderr\n"
      "            [--shard-workers M]   distributed: M worker processes\n"
      "            [--shards K]          objective-space bands (default M)\n"
      "            [--shard-objective I] banded objective (1=energy, 2=cost)\n"
      "            [--heartbeat-timeout SEC]  dead-worker requeue threshold\n"
      "  aspmt_dse optimize spec.txt --objective latency|energy|cost\n"
      "            [--warm-start nsga2|sampler|off] [--warm-start-budget N]\n"
      "  aspmt_dse baseline spec.txt --method enum|lex|lex-cold [--time-limit SEC]\n"
      "  aspmt_dse nsga2    spec.txt [--pop N] [--gens N] [--seed S]\n"
      "  aspmt_dse validate spec.txt\n"
      "  aspmt_dse asp      program.lp [--models N]\n"
      "  aspmt_dse witnesses spec.txt --point L,E,C [--limit N]\n";
  return 2;
}

synth::Specification load(const Args& args) {
  if (args.positional.empty()) throw synth::SpecParseError("missing spec file");
  return synth::load_specification(args.positional.front());
}

void write_generated(const Args& args, const synth::Specification& spec) {
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::cout << synth::to_text(spec);
  } else {
    synth::save_specification(spec, out);
    std::cout << "wrote " << out << " (" << gen::summarize(spec) << ")\n";
  }
}

int cmd_generate_multicore(const Args& args) {
  gen::MulticoreConfig c;
  c.seed = static_cast<std::uint64_t>(args.num("seed", 1));
  c.tasks = static_cast<std::uint32_t>(args.num("tasks", 6));
  c.layers = static_cast<std::uint32_t>(args.num("layers", 3));
  c.big_cores = static_cast<std::uint32_t>(args.num("big", 1));
  c.little_cores = static_cast<std::uint32_t>(args.num("little", 2));
  c.pipeline_depths = static_cast<std::uint32_t>(args.num("depths", 2));
  c.cache_levels = static_cast<std::uint32_t>(args.num("caches", 2));
  c.options_per_task = static_cast<std::uint32_t>(args.num("options", 0));
  c.throttle_factor = args.num("throttle-factor", 3);
  const std::string axes = args.get("axes", "");
  for (std::size_t begin = 0; begin < axes.size();) {
    std::size_t end = axes.find(';', begin);
    if (end == std::string::npos) end = axes.size();
    if (end > begin) c.axes.push_back(axes.substr(begin, end - begin));
    begin = end + 1;
  }
  write_generated(args, gen::generate_multicore(c));
  return 0;
}

int cmd_generate(const Args& args) {
  const std::string family = args.get("family", "layered");
  if (family == "multicore") return cmd_generate_multicore(args);
  if (family != "layered") {
    std::cerr << "unknown generator family '" << family
              << "' (expected layered or multicore)\n";
    return 2;
  }
  gen::GeneratorConfig c;
  c.seed = static_cast<std::uint64_t>(args.num("seed", 1));
  c.tasks = static_cast<std::uint32_t>(args.num("tasks", 6));
  c.options_per_task = static_cast<std::uint32_t>(args.num("options", 2));
  c.bus_processors = static_cast<std::uint32_t>(args.num("bus-procs", 3));
  c.layers = static_cast<std::uint32_t>(args.num("layers", 3));
  const std::string arch = args.get("arch", "bus");
  if (arch == "bus") c.architecture = gen::Architecture::SharedBus;
  else if (arch == "mesh2x2") c.architecture = gen::Architecture::Mesh2x2;
  else if (arch == "mesh3x3") c.architecture = gen::Architecture::Mesh3x3;
  else {
    std::cerr << "unknown architecture '" << arch << "'\n";
    return 2;
  }
  write_generated(args, gen::generate(c));
  return 0;
}

std::optional<pareto::Vec> parse_epsilon(const std::string& text) {
  if (text.empty()) return std::nullopt;
  pareto::Vec eps;
  std::istringstream iss(text);
  std::string part;
  while (std::getline(iss, part, ',')) eps.push_back(std::stoll(part));
  return eps;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write '" << path << "'\n";
    return false;
  }
  out << text;
  return true;
}

/// One point per line, objectives space-separated — the .front golden format.
std::string front_to_text(const std::vector<pareto::Vec>& front) {
  std::ostringstream out;
  for (const pareto::Vec& p : front) {
    for (std::size_t i = 0; i < p.size(); ++i) out << (i ? " " : "") << p[i];
    out << "\n";
  }
  return out.str();
}

/// Shared post-run plumbing for --certify / --proof / --front-out.  Returns
/// the process exit code: certification failures trump the complete/timeout
/// distinction so scripted runs can trust exit 0 == certified.
int finish_explore(const Args& args, bool complete, bool certified,
                   const std::string& certificate_error,
                   const std::string& proof,
                   const std::vector<pareto::Vec>& front) {
  int rc = complete ? 0 : 3;
  if (args.flag("certify")) {
    if (certified) {
      std::cout << "certified: yes (witnesses validated, proof verified)\n";
    } else {
      std::cout << "certified: no (" << certificate_error << ")\n";
      rc = 4;
    }
  }
  const std::string proof_path = args.get("proof-out", "");
  if (!proof_path.empty()) {
    if (proof.empty()) {
      std::cerr << "no proof stream recorded (use --certify)\n";
      if (rc == 0) rc = 4;
    } else if (write_text_file(proof_path, proof)) {
      std::cout << "wrote proof to " << proof_path << " (" << proof.size()
                << " bytes)\n";
    } else {
      rc = 1;
    }
  }
  const std::string front_path = args.get("front-out", "");
  if (!front_path.empty()) {
    if (write_text_file(front_path, front_to_text(front))) {
      std::cout << "wrote front to " << front_path << "\n";
    } else {
      rc = 1;
    }
  }
  return rc;
}

/// The run's resource ceilings from the command line (wall clock, solver
/// conflicts, peak RSS).
dse::BudgetLimits budget_limits(const Args& args) {
  dse::BudgetLimits limits;
  limits.wall_seconds = args.num("time-limit", 0.0);
  limits.conflicts = static_cast<std::uint64_t>(args.num("conflict-budget", 0));
  limits.memory_mb = static_cast<std::size_t>(args.num("mem-limit-mb", 0));
  return limits;
}

/// Apply --warm-start / --warm-start-budget / --warm-start-seed.  Returns
/// false (after a stderr message) on an unknown method name.  The heuristic
/// RNG seed defaults to --seed so `--seed S` alone varies both halves.
bool apply_warm_start(const Args& args, dse::WarmStartOptions& warm) {
  const std::string method = args.get("warm-start", "off");
  const auto parsed = dse::parse_warm_start_method(method);
  if (!parsed) {
    std::cerr << "unknown --warm-start method '" << method
              << "' (expected nsga2|sampler|off)\n";
    return false;
  }
  warm.method = *parsed;
  warm.budget = static_cast<std::uint64_t>(
      args.num("warm-start-budget", static_cast<double>(warm.budget)));
  warm.seed = static_cast<std::uint64_t>(
      args.num("warm-start-seed", args.num("seed", 1)));
  return true;
}

/// Print a front table with one column per Pareto axis, headed by the
/// spec's objective expressions (latency/energy/cost on classic specs).
void print_front(const synth::Specification& spec,
                 const std::vector<pareto::Vec>& front) {
  std::vector<std::string> headers;
  for (const synth::ObjectiveExpr& e : spec.effective_objectives()) {
    headers.push_back(synth::to_string(e));
  }
  util::Table table(std::move(headers));
  for (const pareto::Vec& p : front) {
    std::vector<std::string> row;
    row.reserve(p.size());
    for (const std::int64_t v : p) row.push_back(util::fmt(v));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

void print_warm_stats(const dse::ExploreStats& stats) {
  if (stats.warm_seeds == 0 && stats.warm_rejected == 0) return;
  std::cout << "warm start: " << stats.warm_seeds << " seed(s) injected, "
            << stats.warm_rejected << " rejected\n";
}

/// Load --resume, degrading to a cold start (with a stderr note) when the
/// file is missing, corrupted, or structurally invalid.
std::optional<dse::Checkpoint> load_resume(const Args& args) {
  const std::string path = args.get("resume", "");
  if (path.empty()) return std::nullopt;
  dse::Checkpoint ckpt;
  const std::string err = dse::load_checkpoint(path, ckpt);
  if (!err.empty()) {
    std::cerr << "resume rejected: " << err << "; starting cold\n";
    return std::nullopt;
  }
  std::cout << "resuming from " << path << " (" << ckpt.points.size()
            << " points, " << ckpt.elapsed_ms << " ms prior search)\n";
  return ckpt;
}

void print_run_errors(const std::vector<std::string>& errors) {
  for (const std::string& e : errors) std::cerr << "warning: " << e << "\n";
}

/// Owns every observability endpoint the command line asked for (exporter
/// sinks, metrics registry, output streams) and wires them into the common
/// exploration options.  With no obs flag given, wire() leaves the options
/// untouched — the zero-observer path.
struct ObsSetup {
  std::ofstream trace_file;
  std::ofstream events_file;
  std::unique_ptr<obs::ChromeTraceExporter> chrome;
  std::unique_ptr<obs::NdjsonExporter> ndjson;
  std::unique_ptr<obs::ProgressMeter> progress;
  obs::MultiSink sink;
  obs::MetricsRegistry metrics;
  std::string metrics_path;

  /// Open every requested endpoint; returns false (with a stderr message)
  /// when an output file cannot be created.
  bool init(const Args& args) {
    const std::string trace_path = args.get("trace-out", "");
    if (!trace_path.empty()) {
      trace_file.open(trace_path);
      if (!trace_file) {
        std::cerr << "cannot write '" << trace_path << "'\n";
        return false;
      }
      chrome = std::make_unique<obs::ChromeTraceExporter>(trace_file);
      sink.add(chrome.get());
    }
    const std::string events_path = args.get("events-out", "");
    if (!events_path.empty()) {
      events_file.open(events_path);
      if (!events_file) {
        std::cerr << "cannot write '" << events_path << "'\n";
        return false;
      }
      ndjson = std::make_unique<obs::NdjsonExporter>(events_file);
      sink.add(ndjson.get());
    }
    if (args.flag("progress")) {
      progress = std::make_unique<obs::ProgressMeter>(std::cerr);
      sink.add(progress.get());
    }
    metrics_path = args.get("metrics-out", "");
    return true;
  }

  void wire(dse::CommonOptions& common) {
    if (!sink.empty()) common.sink = &sink;
    if (!metrics_path.empty()) common.metrics = &metrics;
  }

  /// Post-run: persist the metrics snapshot.  Returns 0, or 1 on I/O error.
  int finish() {
    if (metrics_path.empty()) return 0;
    if (!write_text_file(metrics_path, metrics.to_json() + "\n")) return 1;
    std::cout << "wrote metrics to " << metrics_path << "\n";
    return 0;
  }
};

/// --reexplore-from CKPT: incremental re-exploration (dse/respec.hpp).  The
/// positional spec is the *edited* specification; the checkpoint is the
/// previous session.  A missing or corrupted checkpoint degrades to a cold
/// start (empty checkpoint == Unsafe delta) instead of failing the run.
int explore_incremental(const synth::Specification& spec, const Args& args) {
  dse::Checkpoint prev;
  const std::string path = args.get("reexplore-from", "");
  const std::string err = dse::load_checkpoint(path, prev);
  if (!err.empty()) {
    std::cerr << "reexplore: " << err << "; starting cold\n";
    prev = dse::Checkpoint{};
  }
  dse::ReexploreOptions opts;
  opts.base.threads = static_cast<std::size_t>(args.num("threads", 1));
  opts.base.seed = static_cast<std::uint64_t>(args.num("seed", 1));
  dse::CommonOptions& common = opts.base.common;
  common.time_limit_seconds = args.num("time-limit", 0.0);
  common.archive_kind = args.get("archive", "quadtree");
  common.partial_evaluation = !args.flag("no-partial-eval");
  common.certify = args.flag("certify");
  if (!apply_warm_start(args, common.warm_start)) return 2;
  dse::Budget budget(budget_limits(args));
  common.budget = &budget;
  common.checkpoint_path = args.get("checkpoint-out", "");
  common.checkpoint_interval_seconds = args.num("checkpoint-interval", 30.0);
  ObsSetup obs_setup;
  if (!obs_setup.init(args)) return 1;
  obs_setup.wire(common);
  const SignalGuard guard(&budget);
  const dse::ReexploreResult r = dse::reexplore(prev, spec, opts);
  const dse::ReuseStats& reuse = r.reuse;
  std::cout << "delta: " << dse::delta_class_name(reuse.delta.cls)
            << " (archive " << reuse.archive_reused << "/"
            << reuse.archive_candidates << ", clauses "
            << reuse.clauses_replayed << "/" << reuse.clause_candidates
            << ", slices " << reuse.slices_resumed << ", reuse rate "
            << util::fmt(reuse.reuse_rate(), 2)
            << (reuse.cold_start ? ", cold start" : "") << ")\n";
  std::cout << "exact front: " << r.base.front.size() << " points ("
            << (r.base.stats.complete ? "complete" : "partial")
            << ", stopped: " << dse::to_string(r.base.stats.reason) << ", "
            << util::fmt(r.base.stats.seconds, 3) << "s, "
            << r.base.stats.models << " models, " << r.base.stats.prunings
            << " prunings)\n";
  print_warm_stats(r.base.stats);
  print_run_errors(r.base.errors);
  print_front(spec, r.base.front);
  if (args.flag("witnesses")) {
    for (const auto& witness : r.base.witnesses) {
      std::cout << "\n" << witness.describe(spec);
    }
  }
  const int obs_rc = obs_setup.finish();
  const int rc =
      finish_explore(args, r.base.stats.complete, r.base.certified,
                     r.base.certificate_error, r.base.proof, r.base.front);
  return rc != 0 ? rc : obs_rc;
}

int explore_portfolio(const synth::Specification& spec, const Args& args) {
  dse::ParallelExploreOptions opts;
  opts.threads = static_cast<std::size_t>(args.num("threads", 1));
  opts.common.time_limit_seconds = args.num("time-limit", 0.0);
  opts.common.archive_kind = args.get("archive", "quadtree");
  opts.common.partial_evaluation = !args.flag("no-partial-eval");
  opts.seed = static_cast<std::uint64_t>(args.num("seed", 1));
  opts.common.certify = args.flag("certify");
  if (!apply_warm_start(args, opts.common.warm_start)) return 2;
  dse::Budget budget(budget_limits(args));
  opts.common.budget = &budget;
  opts.common.checkpoint_path = args.get("checkpoint-out", "");
  opts.common.checkpoint_interval_seconds =
      args.num("checkpoint-interval", 30.0);
  const std::optional<dse::Checkpoint> resume = load_resume(args);
  if (resume) opts.common.resume = &*resume;
  ObsSetup obs_setup;
  if (!obs_setup.init(args)) return 1;
  obs_setup.wire(opts.common);
  const SignalGuard guard(&budget);
  const dse::ParallelExploreResult r = dse::explore_parallel(spec, opts);
  std::cout << "exact front: " << r.base.front.size() << " points ("
            << (r.base.stats.complete ? "complete" : "partial")
            << ", stopped: " << dse::to_string(r.base.stats.reason) << ", "
            << util::fmt(r.base.stats.seconds, 3) << "s, " << r.workers.size()
            << " workers, " << r.base.stats.models << " models, "
            << r.base.stats.prunings << " prunings)\n";
  print_warm_stats(r.base.stats);
  for (const dse::WorkerError& e : r.worker_errors) {
    std::cerr << "warning: worker " << e.worker << " failed: " << e.message
              << "\n";
  }
  print_run_errors(r.base.errors);
  print_front(spec, r.base.front);
  std::cout << "\nper-worker breakdown:\n";
  util::Table workers({"worker", "models", "slice", "inserts", "rejected",
                       "prunings", "conflicts", "restarts", "sec", "proof"});
  for (const dse::WorkerReport& w : r.workers) {
    workers.add_row({util::fmt(static_cast<long long>(w.worker)),
                     util::fmt(static_cast<long long>(w.models)),
                     util::fmt(static_cast<long long>(w.slice_models)),
                     util::fmt(static_cast<long long>(w.shared_inserts)),
                     util::fmt(static_cast<long long>(w.rejected_inserts)),
                     util::fmt(static_cast<long long>(w.prunings)),
                     util::fmt(static_cast<long long>(w.conflicts)),
                     util::fmt(static_cast<long long>(w.restarts)),
                     util::fmt(w.seconds, 3),
                     w.proved_complete ? "yes" : "-"});
  }
  workers.print(std::cout);
  if (args.flag("witnesses")) {
    for (const auto& witness : r.base.witnesses) {
      std::cout << "\n" << witness.describe(spec);
    }
  }
  const int obs_rc = obs_setup.finish();
  const int rc =
      finish_explore(args, r.base.stats.complete, r.base.certified,
                     r.base.certificate_error, r.base.proof, r.base.front);
  return rc != 0 ? rc : obs_rc;
}

// ---- distributed exploration (dse/distributed.hpp) -------------------------

/// Serialized stdout writer for the shard-worker protocol: whole lines only,
/// one write() per message, so heartbeat and event lines never interleave.
std::mutex g_shard_out_mutex;

void shard_write(const std::string& text) {
  const std::lock_guard<std::mutex> lock(g_shard_out_mutex);
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(STDOUT_FILENO, text.data() + off,
                              text.size() - off);
    if (n <= 0) return;  // coordinator gone; nothing sensible left to do
    off += static_cast<std::size_t>(n);
  }
}

/// EventSink of the shard worker: forwards every archive insert up the
/// control pipe as a `PT` line.  Doubles as the crash-injection hook — with
/// --die-after-points N the worker hard-exits after the Nth streamed point,
/// simulating a mid-run worker death for the requeue tests.
class ShardPipeSink final : public obs::EventSink {
 public:
  explicit ShardPipeSink(std::uint64_t die_after_points)
      : die_after_(die_after_points) {}

  void on_event(const obs::Event& e) override {
    // Seeded points count as points: the PT stream mirrors everything that
    // entered the worker's archive, however it got there — which also makes
    // --die-after-points fire even on a shard whose band is fully covered
    // by the shared seed pool.
    if (e.kind != obs::EventKind::ArchiveInsert &&
        e.kind != obs::EventKind::WarmStartSeed) {
      return;
    }
    std::ostringstream line;
    line << "PT " << e.a << ' ' << e.b << ' ' << e.c << '\n';
    shard_write(line.str());
    if (die_after_ != 0 && ++points_ >= die_after_) _exit(9);
  }

 private:
  std::uint64_t die_after_;
  std::uint64_t points_ = 0;
};

/// `aspmt_dse shard-worker spec.txt --shard-lo=.. --shard-hi=..` — one shard
/// of a distributed run.  Speaks the wire format documented in
/// dse/distributed.hpp on stdout and exits 0 after the RESULT payload.
int cmd_shard_worker(const Args& args) {
  const synth::Specification spec = load(args);
  dse::ParallelExploreOptions opts;
  opts.threads = static_cast<std::size_t>(args.num("threads", 1));
  opts.seed = static_cast<std::uint64_t>(args.num("seed", 1));
  opts.common.time_limit_seconds = args.num("time-limit", 0.0);
  opts.common.archive_kind = args.get("archive", "quadtree");
  opts.common.partial_evaluation = !args.flag("no-partial-eval");
  opts.common.certify = args.flag("certify");
  opts.common.collect_witnesses = true;  // RESULT payload + checkpoints
  opts.common.checkpoint_path = args.get("checkpoint-out", "");
  opts.common.checkpoint_interval_seconds = args.num("checkpoint-interval", 0.0);
  opts.shard.active = true;
  opts.shard.objective = static_cast<std::size_t>(args.num("shard-objective", 1));
  opts.shard.lo = args.i64("shard-lo", std::numeric_limits<std::int64_t>::min());
  opts.shard.hi = args.i64("shard-hi", std::numeric_limits<std::int64_t>::max());

  // Shared seed pool: the coordinator's split sample, forwarded to every
  // shard so cross-band dominance pruning survives the partition.  Seeds go
  // through the same validation gate as any warm start.
  const std::string seeds_path = args.get("warm-seeds", "");
  if (!seeds_path.empty()) {
    const std::string err =
        dse::load_seed_file(seeds_path, opts.common.warm_start.external);
    if (!err.empty()) {
      std::cerr << "warm-seeds rejected: " << err << "; starting cold\n";
    }
  }

  // Requeue resume: the dead predecessor's checkpoint re-enters through the
  // certifiable warm-start gate — every point re-validates and emits its F
  // proof step, so a resumed shard certifies like a cold one.
  const std::string resume_path = args.get("shard-resume", "");
  if (!resume_path.empty()) {
    dse::Checkpoint ckpt;
    const std::string err = dse::load_checkpoint(resume_path, ckpt);
    if (!err.empty()) {
      std::cerr << "shard-resume rejected: " << err << "; starting cold\n";
    } else if (!dse::checkpoint_matches(ckpt, spec)) {
      std::cerr << "shard-resume rejected: spec mismatch; starting cold\n";
    } else {
      for (std::size_t i = 0; i < ckpt.points.size(); ++i) {
        if (i >= ckpt.witnesses.size() ||
            ckpt.witnesses[i].option_of_task.empty()) {
          continue;  // witness-less points cannot pass the validation gate
        }
        opts.common.warm_start.external.push_back(
            dse::WarmSeedCandidate{ckpt.points[i], ckpt.witnesses[i]});
      }
    }
  }

  ShardPipeSink sink(
      static_cast<std::uint64_t>(args.num("die-after-points", 0)));
  opts.common.sink = &sink;

  shard_write("ASPMT-SHARD 1\n");
  const long hb_ms = static_cast<long>(args.num("heartbeat-ms", 200));
  std::atomic<bool> stop{false};
  util::Timer up;
  std::thread heartbeat([&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      std::ostringstream line;
      line << "HB " << static_cast<long long>(up.elapsed_ms()) << '\n';
      shard_write(line.str());
      // Sleep in short slices so join() after a fast explore is immediate.
      for (long slept = 0; slept < hb_ms; slept += 10) {
        if (stop.load(std::memory_order_relaxed)) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  });

  const dse::ParallelExploreResult r = dse::explore_parallel(spec, opts);

  stop.store(true, std::memory_order_relaxed);
  heartbeat.join();
  const std::string payload = dse::shard_result_to_text(r);
  shard_write("RESULT " + std::to_string(payload.size()) + "\n" + payload);
  return r.base.stats.complete ? 0 : 3;
}

int explore_sharded(const synth::Specification& spec, const Args& args) {
  dse::DistributedOptions opts;
  opts.processes = static_cast<std::size_t>(args.num("shard-workers", 2));
  opts.shards = static_cast<std::size_t>(args.num("shards", 0));
  opts.shard_objective =
      static_cast<std::size_t>(args.num("shard-objective", 1));
  opts.heartbeat_timeout_seconds = args.num("heartbeat-timeout", 10.0);
  opts.in_process = args.flag("shards-in-process");
  opts.base.threads = static_cast<std::size_t>(args.num("threads", 1));
  opts.base.seed = static_cast<std::uint64_t>(args.num("seed", 1));
  opts.base.common.time_limit_seconds = args.num("time-limit", 0.0);
  opts.base.common.archive_kind = args.get("archive", "quadtree");
  opts.base.common.partial_evaluation = !args.flag("no-partial-eval");
  opts.base.common.certify = args.flag("certify");
  {
    // Mirrors the explore_distributed pre-flight: banding is only sound on
    // a linear leaf axis (an energy or cost metric).
    const std::vector<synth::ObjectiveExpr> axes = spec.effective_objectives();
    const bool linear_leaf =
        opts.shard_objective < axes.size() &&
        axes[opts.shard_objective].kind == synth::ObjectiveExpr::Kind::Metric &&
        axes[opts.shard_objective].metric != "latency";
    if (!linear_leaf) {
      std::cerr << "--shard-objective " << opts.shard_objective
                << " is not shardable: only a linear leaf axis (an energy or "
                   "cost metric) admits sound banding; latency (difference "
                   "logic) and combinator axes do not\n";
      return 2;
    }
  }
  ObsSetup obs_setup;
  if (!obs_setup.init(args)) return 1;
  obs_setup.wire(opts.base.common);
  const dse::DistributedResult r = dse::explore_distributed(spec, opts);
  std::cout << "exact front: " << r.base.front.size() << " points ("
            << (r.base.stats.complete ? "complete" : "partial")
            << ", stopped: " << dse::to_string(r.base.stats.reason) << ", "
            << util::fmt(r.base.stats.seconds, 3) << "s, " << r.shards.size()
            << " shards x " << r.processes << " workers, "
            << r.base.stats.models << " models)\n";
  print_run_errors(r.base.errors);
  print_front(spec, r.base.front);
  std::cout << "\nper-shard breakdown:\n";
  util::Table shards({"shard", "band", "attempts", "resumed", "points",
                      "models", "sec", "complete"});
  for (const dse::ShardReport& s : r.shards) {
    const auto bound = [](std::int64_t v) {
      if (v == std::numeric_limits<std::int64_t>::min()) return std::string("-inf");
      if (v == std::numeric_limits<std::int64_t>::max()) return std::string("+inf");
      return std::to_string(v);
    };
    shards.add_row({util::fmt(static_cast<long long>(s.shard)),
                    "[" + bound(s.lo) + "," + bound(s.hi) + "]",
                    util::fmt(static_cast<long long>(s.attempts)),
                    s.resumed ? "yes" : "-",
                    util::fmt(static_cast<long long>(s.points)),
                    util::fmt(static_cast<long long>(s.models)),
                    util::fmt(s.seconds, 3), s.completed ? "yes" : "no"});
  }
  shards.print(std::cout);
  if (args.flag("witnesses")) {
    for (const auto& witness : r.base.witnesses) {
      std::cout << "\n" << witness.describe(spec);
    }
  }
  const int obs_rc = obs_setup.finish();
  const int rc =
      finish_explore(args, r.base.stats.complete, r.base.certified,
                     r.base.certificate_error, r.base.proof, r.base.front);
  return rc != 0 ? rc : obs_rc;
}

int cmd_explore(const Args& args) {
  const synth::Specification spec = load(args);
  if (args.flag("reexplore-from")) return explore_incremental(spec, args);
  if (args.flag("shard-workers") || args.flag("shards")) {
    return explore_sharded(spec, args);
  }
  if (args.flag("threads")) return explore_portfolio(spec, args);
  dse::ExploreOptions opts;
  opts.common.time_limit_seconds = args.num("time-limit", 0.0);
  opts.common.archive_kind = args.get("archive", "quadtree");
  opts.common.partial_evaluation = !args.flag("no-partial-eval");
  if (const auto eps = parse_epsilon(args.get("epsilon", ""))) {
    opts.epsilon = *eps;
  }
  opts.common.certify = args.flag("certify");
  if (!apply_warm_start(args, opts.common.warm_start)) return 2;
  dse::Budget budget(budget_limits(args));
  opts.common.budget = &budget;
  opts.common.checkpoint_path = args.get("checkpoint-out", "");
  opts.common.checkpoint_interval_seconds =
      args.num("checkpoint-interval", 30.0);
  const std::optional<dse::Checkpoint> resume = load_resume(args);
  if (resume) opts.common.resume = &*resume;
  ObsSetup obs_setup;
  if (!obs_setup.init(args)) return 1;
  obs_setup.wire(opts.common);
  const SignalGuard guard(&budget);
  const dse::ExploreResult r = dse::explore(spec, opts);
  std::cout << (opts.epsilon.empty() ? "exact front" : "eps-approximate set")
            << ": " << r.front.size() << " points ("
            << (r.stats.complete ? "complete" : "partial") << ", stopped: "
            << dse::to_string(r.stats.reason) << ", "
            << util::fmt(r.stats.seconds, 3) << "s, " << r.stats.models
            << " models, " << r.stats.prunings << " prunings)\n";
  print_warm_stats(r.stats);
  print_run_errors(r.errors);
  print_front(spec, r.front);
  if (args.flag("witnesses")) {
    for (std::size_t i = 0; i < r.witnesses.size(); ++i) {
      std::cout << "\n" << r.witnesses[i].describe(spec);
    }
  }
  const int obs_rc = obs_setup.finish();
  const int rc = finish_explore(args, r.stats.complete, r.certified,
                                r.certificate_error, r.proof, r.front);
  return rc != 0 ? rc : obs_rc;
}

int cmd_optimize(const Args& args) {
  const synth::Specification spec = load(args);
  const std::string objective = args.get("objective", "latency");
  dse::SynthContext ctx(spec);
  std::size_t index = ctx.objectives.count();
  for (std::size_t i = 0; i < ctx.objectives.count(); ++i) {
    if (ctx.objectives.name(i) == objective) index = i;
  }
  if (index == ctx.objectives.count()) {
    std::cerr << "unknown objective '" << objective << "'\n";
    return 2;
  }
  dse::WarmStartOptions warm;
  if (!apply_warm_start(args, warm)) return 2;
  std::int64_t upper = dse::kNoUpperBound;
  if (dse::warm_start_enabled(warm)) {
    const dse::WarmStartResult ws = dse::generate_warm_seeds(spec, warm);
    for (const dse::WarmSeedCandidate& s : ws.seeds) {
      upper = std::min(upper, s.point[index]);
    }
    if (upper != dse::kNoUpperBound) {
      std::cout << "warm start: " << ws.seeds.size()
                << " validated seed(s), descending from " << objective
                << " <= " << upper << "\n";
    }
  }
  const util::Deadline deadline(args.num("time-limit", 0.0));
  std::vector<asp::Lit> assumptions;
  const dse::MinimizeResult r =
      dse::minimize_objective(ctx, index, assumptions, &deadline, upper);
  if (!r.feasible) {
    std::cout << "infeasible" << (r.proven ? " (proven)" : " (timeout)") << "\n";
    return r.proven ? 0 : 3;
  }
  std::cout << "min " << objective << " = " << r.best
            << (r.proven ? " (proven optimal)" : " (best found, timeout)") << "\n";
  return r.proven ? 0 : 3;
}

int cmd_baseline(const Args& args) {
  const synth::Specification spec = load(args);
  const std::string method = args.get("method", "lex");
  const double limit = args.num("time-limit", 0.0);
  dse::BaselineResult r;
  if (method == "enum") r = dse::enumerate_and_filter(spec, limit);
  else if (method == "lex") r = dse::lexicographic_epsilon(spec, limit);
  else if (method == "lex-cold") r = dse::lexicographic_epsilon_cold(spec, limit);
  else {
    std::cerr << "unknown method '" << method << "'\n";
    return 2;
  }
  std::cout << method << ": " << r.front.size() << " points ("
            << (r.complete ? "complete" : "time-limited") << ", "
            << util::fmt(r.seconds, 3) << "s, " << r.models << " models)\n";
  for (const auto& p : r.front) std::cout << pareto::to_string(p) << "\n";
  return r.complete ? 0 : 3;
}

int cmd_nsga2(const Args& args) {
  const synth::Specification spec = load(args);
  ea::Nsga2Options opts;
  opts.population = static_cast<std::size_t>(args.num("pop", 40));
  opts.generations = static_cast<std::size_t>(args.num("gens", 60));
  opts.seed = static_cast<std::uint64_t>(args.num("seed", 1));
  const ea::Nsga2Result r = ea::nsga2(spec, opts);
  std::cout << "nsga2: " << r.front.size() << " points (" << r.evaluations
            << " evaluations, " << util::fmt(r.seconds, 3) << "s)\n";
  for (const auto& p : r.front) std::cout << pareto::to_string(p) << "\n";
  return 0;
}

int cmd_witnesses(const Args& args) {
  const synth::Specification spec = load(args);
  const std::string point_text = args.get("point", "");
  if (point_text.empty()) {
    std::cerr << "missing --point L,E,C\n";
    return 2;
  }
  const auto point = parse_epsilon(point_text);  // same comma-list format
  const auto limit = static_cast<std::size_t>(args.num("limit", 50));
  const dse::WitnessEnumeration w =
      dse::enumerate_witnesses(spec, *point, limit, args.num("time-limit", 0.0));
  std::cout << w.implementations.size() << " implementation(s) at "
            << pareto::to_string(*point)
            << (w.complete ? "" : " (truncated)") << "\n";
  for (const auto& impl : w.implementations) {
    std::cout << "\n" << impl.describe(spec) << impl.describe_schedule(spec);
  }
  return 0;
}

int cmd_asp(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "missing program file\n";
    return 2;
  }
  std::ifstream in(args.positional.front());
  if (!in) {
    std::cerr << "cannot read '" << args.positional.front() << "'\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  asp::GroundStats gstats;
  const asp::Program program = asp::ground_text(buffer.str(), &gstats);
  std::cout << "grounded: " << gstats.ground_atoms << " atoms, "
            << gstats.ground_rules << " rules\n";

  asp::Solver solver;
  const asp::CompiledProgram compiled = asp::compile(program, solver);
  asp::UnfoundedSetChecker checker(compiled);
  solver.add_propagator(&checker);

  const auto max_models = static_cast<std::uint64_t>(args.num("models", 10));
  std::uint64_t count = 0;
  while (count < max_models && solver.solve() == asp::Solver::Result::Sat) {
    ++count;
    std::cout << "answer " << count << ":";
    std::vector<asp::Lit> blocking;
    for (asp::Atom a = 0; a < program.num_atoms(); ++a) {
      const bool value = solver.model_value(compiled.atom_var[a]);
      if (value) std::cout << " " << program.name(a);
      blocking.push_back(asp::Lit::make(compiled.atom_var[a], !value));
    }
    std::cout << "\n";
    if (!solver.add_clause(std::move(blocking))) break;
  }
  if (count == 0) {
    std::cout << "UNSATISFIABLE\n";
    return 1;
  }
  std::cout << count << " answer set(s)"
            << (count == max_models ? " (limit reached)" : "") << "\n";
  return 0;
}

int cmd_validate(const Args& args) {
  const synth::Specification spec = load(args);
  const std::string err = spec.validate();
  if (err.empty()) {
    std::cout << "ok: " << gen::summarize(spec) << "\n";
    return 0;
  }
  std::cout << "invalid: " << err << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv);
  if (!args.removed_flag_error.empty()) {
    std::cerr << "error: " << args.removed_flag_error << "\n";
    return 2;
  }
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "explore") return cmd_explore(args);
    if (command == "optimize") return cmd_optimize(args);
    if (command == "baseline") return cmd_baseline(args);
    if (command == "nsga2") return cmd_nsga2(args);
    if (command == "validate") return cmd_validate(args);
    if (command == "asp") return cmd_asp(args);
    if (command == "witnesses") return cmd_witnesses(args);
    if (command == "shard-worker") return cmd_shard_worker(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
