// aspmt_check — standalone verifier for `p aspmt 1` proof streams.
//
//   aspmt_check proof.txt [--require-unsat]
//
// Replays the proof with the solver-independent checker: every learnt
// clause is RUP-verified, every theory lemma re-derived from the declared
// theory data, every Unsat conclusion discharged by unit propagation.
// With --require-unsat the stream must additionally contain a verified
// assumption-free Unsat conclusion (the completeness certificate of an
// exhaustive exploration).  Feasible-point steps are taken at face value
// here; end-to-end witness validation is `aspmt_dse explore --certify`.
//
// Exit code: 0 when the proof verifies, 1 otherwise, 2 on usage errors.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cert/checker.hpp"

int main(int argc, char** argv) {
  std::string path;
  aspmt::cert::CheckOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require-unsat") {
      options.require_global_unsat = true;
    } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
      path = arg;
    } else {
      std::cerr << "usage: aspmt_check proof.txt [--require-unsat]\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: aspmt_check proof.txt [--require-unsat]\n";
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read '" << path << "'\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  const aspmt::cert::CheckResult r = aspmt::cert::check_proof(buffer.str(), options);
  std::cout << "steps: " << r.input_clauses << " input, " << r.learnt_clauses
            << " learnt, " << r.theory_lemmas << " theory, " << r.deletions
            << " deleted, " << r.conclusions << " conclusion(s), "
            << r.feasible_points << " feasible point(s)\n";
  if (!r.ok) {
    std::cout << "REJECTED: " << r.error << "\n";
    return 1;
  }
  std::cout << "VERIFIED"
            << (r.concluded_global_unsat ? " (global unsatisfiability concluded)"
                                         : "")
            << (r.truncated ? " (stream truncated — no completeness claim)" : "")
            << "\n";
  return 0;
}
