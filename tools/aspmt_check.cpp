// aspmt_check — standalone verifier for `p aspmt 1` proof streams and
// `p aspmt-merged 1` distributed-run containers.
//
//   aspmt_check proof.txt [--require-unsat]
//
// Replays the proof with the solver-independent checker: every learnt
// clause is RUP-verified, every theory lemma re-derived from the declared
// theory data, every Unsat conclusion discharged by unit propagation.
// With --require-unsat the stream must additionally contain a verified
// assumption-free Unsat conclusion (the completeness certificate of an
// exhaustive exploration).  Feasible-point steps are taken at face value
// here; end-to-end witness validation is `aspmt_dse explore --certify`.
//
// A merged container is verified shard by shard: every embedded stream must
// check out, prove a shard box covering its claimed band, declare no
// unconditional bound, and share shard 0's declaration core; the claimed
// bands must tile the whole objective line (the cross-shard coverage
// argument — see cert/certify.hpp).  --require-unsat is implied per shard:
// each band-conditional Unsat *is* the shard's completeness certificate.
//
// Exit code: 0 when the proof verifies, 1 otherwise, 2 on usage errors.
#include <algorithm>
#include <array>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "cert/certify.hpp"
#include "cert/checker.hpp"

namespace {

int check_merged(const std::string& text) {
  using namespace aspmt::cert;
  std::size_t objective = 0;
  std::vector<ShardProof> shards;
  const std::string perr = parse_merged_proof(text, objective, shards);
  if (!perr.empty()) {
    std::cout << "REJECTED: " << perr << "\n";
    return 1;
  }
  std::cout << "merged container: " << shards.size()
            << " shard(s) on objective " << objective << "\n";

  CheckOptions options;
  options.shard_objective = static_cast<std::int64_t>(objective);
  std::string core;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardProof& shard = shards[i];
    const CheckResult r = check_proof(shard.proof, options);
    if (!r.ok) {
      std::cout << "REJECTED: shard " << i << ": " << r.error << "\n";
      return 1;
    }
    if (r.truncated) {
      std::cout << "REJECTED: shard " << i
                << " stream truncated — no completeness claim\n";
      return 1;
    }
    if (r.unsafe_bounds) {
      std::cout << "REJECTED: shard " << i
                << " declares an unconditional bound\n";
      return 1;
    }
    bool covered = false;
    for (const std::array<std::int64_t, 2>& box : r.shard_boxes) {
      if (box[0] <= shard.lo && box[1] >= shard.hi) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      std::cout << "REJECTED: shard " << i
                << " proves no box covering its claimed band\n";
      return 1;
    }
    // All shards must have solved the same declared constraint system.
    std::string shard_core;
    std::istringstream lines(shard.proof);
    std::string line;
    while (std::getline(lines, line)) {
      const std::string head = line.substr(0, line.find(' '));
      if (head == "I" || head == "S" || head == "N" || head == "E" ||
          head == "O" || head == "PR") {
        shard_core += line + "\n";
      }
    }
    if (i == 0) {
      core = std::move(shard_core);
    } else if (shard_core != core) {
      std::cout << "REJECTED: shard " << i
                << " solved a different constraint system than shard 0\n";
      return 1;
    }
    std::cout << "shard " << i << ": verified (" << r.theory_lemmas
              << " theory lemmas, " << r.conclusions << " conclusion(s), "
              << r.shard_boxes.size() << " box(es))\n";
  }

  // Coverage: the claimed bands tile (-inf, +inf) exactly.
  std::vector<std::array<std::int64_t, 2>> bands;
  bands.reserve(shards.size());
  for (const ShardProof& s : shards) bands.push_back({s.lo, s.hi});
  std::sort(bands.begin(), bands.end());
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  bool tiled = bands.front()[0] == kMin && bands.back()[1] == kMax;
  for (std::size_t i = 0; tiled && i + 1 < bands.size(); ++i) {
    if (bands[i + 1][0] != bands[i][1] + 1) tiled = false;
  }
  if (!tiled) {
    std::cout << "REJECTED: shard bands do not tile the objective line\n";
    return 1;
  }
  std::cout << "VERIFIED (band union covers the objective space)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  aspmt::cert::CheckOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require-unsat") {
      options.require_global_unsat = true;
    } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
      path = arg;
    } else {
      std::cerr << "usage: aspmt_check proof.txt [--require-unsat]\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: aspmt_check proof.txt [--require-unsat]\n";
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read '" << path << "'\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  if (buffer.str().rfind(aspmt::cert::kMergedProofHeader, 0) == 0) {
    return check_merged(buffer.str());
  }

  const aspmt::cert::CheckResult r = aspmt::cert::check_proof(buffer.str(), options);
  std::cout << "steps: " << r.input_clauses << " input, " << r.learnt_clauses
            << " learnt, " << r.theory_lemmas << " theory, " << r.deletions
            << " deleted, " << r.conclusions << " conclusion(s), "
            << r.feasible_points << " feasible point(s)\n";
  if (!r.ok) {
    std::cout << "REJECTED: " << r.error << "\n";
    return 1;
  }
  std::cout << "VERIFIED"
            << (r.concluded_global_unsat ? " (global unsatisfiability concluded)"
                                         : "")
            << (r.truncated ? " (stream truncated — no completeness claim)" : "")
            << "\n";
  return 0;
}
