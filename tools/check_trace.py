#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by --trace-out.

Checks that the file is syntactically valid JSON, follows the trace_event
object format (Perfetto / chrome://tracing loadable), and that solve spans
are properly bracketed per track.

Usage: check_trace.py TRACE.json [--min-events N]
Exit codes: 0 ok, 1 validation failure, 2 usage.
"""
import argparse
import collections
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--min-events", type=int, default=1,
                    help="require at least N trace events")
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"not valid JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("missing top-level traceEvents array (object format expected)")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not an array")
    if len(events) < args.min_events:
        fail(f"only {len(events)} events, expected >= {args.min_events}")

    depth = collections.defaultdict(int)  # (pid, tid) -> open B spans
    last_ts = {}
    for i, e in enumerate(events):
        for key in ("ph", "name", "pid", "tid"):
            if key not in e:
                fail(f"event {i} missing required key '{key}': {e}")
        ph = e["ph"]
        if ph not in ("B", "E", "i", "I", "C", "M", "X"):
            fail(f"event {i} has unknown phase '{ph}'")
        if ph != "M" and "ts" not in e:
            fail(f"event {i} ({ph}/{e['name']}) missing ts")
        track = (e["pid"], e["tid"])
        if ph == "B":
            depth[track] += 1
        elif ph == "E":
            depth[track] -= 1
            if depth[track] < 0:
                fail(f"event {i}: E without matching B on track {track}")
        if ph in ("B", "E") and "ts" in e:
            # Within one track, span begins/ends must be time-ordered.
            if track in last_ts and e["ts"] < last_ts[track] - 1e-6:
                fail(f"event {i}: ts went backwards on track {track}")
            last_ts[track] = e["ts"]

    open_spans = {t: d for t, d in depth.items() if d != 0}
    if open_spans:
        fail(f"unbalanced solve spans at end of trace: {open_spans}")

    print(f"check_trace: OK: {len(events)} events, "
          f"{len(depth)} span track(s), all spans balanced")


if __name__ == "__main__":
    main()
