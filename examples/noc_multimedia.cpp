// NoC multimedia scenario: a video-pipeline task graph on a 3x3 mesh NoC.
//
// The classic DSE demonstrator: a decode pipeline with parallel enhancement
// branches mapped onto a mesh of heterogeneous tiles.  Compares the exact
// ASPmT front against the NSGA-II approximation under a matched wall-clock
// budget — the Figure-1 story on a concrete application.
#include <algorithm>
#include <iostream>

#include "dse/explorer.hpp"
#include "ea/nsga2.hpp"
#include "gen/generator.hpp"
#include "pareto/indicators.hpp"
#include "synth/spec.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

aspmt::synth::Specification build_noc_spec() {
  using namespace aspmt::synth;
  Specification spec;
  // 3x3 mesh of routers, one tile processor each; alternating fast/slow
  // tiles.
  ResourceId router[3][3];
  ResourceId tile[3][3];
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      router[y][x] = spec.add_resource(
          "r" + std::to_string(x) + std::to_string(y), ResourceKind::Router, 2);
    }
  }
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      const bool fast = (x + y) % 2 == 0;
      tile[y][x] = spec.add_resource(
          "tile" + std::to_string(x) + std::to_string(y),
          ResourceKind::Processor, fast ? 12 : 6);
      spec.add_link(tile[y][x], router[y][x], 1, 1);
      spec.add_link(router[y][x], tile[y][x], 1, 1);
      if (x > 0) {
        spec.add_link(router[y][x - 1], router[y][x], 1, 1);
        spec.add_link(router[y][x], router[y][x - 1], 1, 1);
      }
      if (y > 0) {
        spec.add_link(router[y - 1][x], router[y][x], 1, 1);
        spec.add_link(router[y][x], router[y - 1][x], 1, 1);
      }
    }
  }

  // Video pipeline: parse -> decode -> {luma, chroma} -> merge -> output.
  const TaskId parse = spec.add_task("parse");
  const TaskId decode = spec.add_task("decode");
  const TaskId luma = spec.add_task("luma_filter");
  const TaskId chroma = spec.add_task("chroma_filter");
  const TaskId merge = spec.add_task("merge");
  const TaskId output = spec.add_task("output");
  spec.add_message("bitstream", parse, decode, 2);
  spec.add_message("coeffs_y", decode, luma, 3);
  spec.add_message("coeffs_c", decode, chroma, 2);
  spec.add_message("y_plane", luma, merge, 3);
  spec.add_message("c_plane", chroma, merge, 2);
  spec.add_message("frame", merge, output, 4);

  // Each task may run on two specific tiles (fast vs slow operating point).
  auto map2 = [&](TaskId t, ResourceId fast_tile, ResourceId slow_tile,
                  std::int64_t work) {
    spec.add_mapping(t, fast_tile, work, work * 3);
    spec.add_mapping(t, slow_tile, work * 2, work);
  };
  map2(parse, tile[0][0], tile[0][1], 2);
  map2(decode, tile[1][1], tile[0][1], 4);
  map2(luma, tile[2][0], tile[1][0], 3);
  map2(chroma, tile[0][2], tile[1][2], 2);
  map2(merge, tile[1][1], tile[2][1], 2);
  map2(output, tile[2][2], tile[2][1], 1);
  return spec;
}

}  // namespace

int main() {
  using namespace aspmt;
  const synth::Specification spec = build_noc_spec();
  if (const std::string err = spec.validate(); !err.empty()) {
    std::cerr << "broken spec: " << err << "\n";
    return 1;
  }
  std::cout << "NoC multimedia pipeline (" << gen::summarize(spec) << ")\n\n";

  dse::ExploreOptions opts;
  opts.common.time_limit_seconds = 60.0;
  const dse::ExploreResult exact = dse::explore(spec, opts);
  std::cout << "exact front: " << exact.front.size() << " points ("
            << (exact.stats.complete ? "complete" : "time-limited") << ", "
            << util::fmt(exact.stats.seconds, 2) << "s, "
            << exact.stats.models << " models, " << exact.stats.prunings
            << " prunings)\n";

  // EA with a matched wall-clock budget.
  ea::Nsga2Options ea_opts;
  ea_opts.seed = 3;
  ea_opts.population = 60;
  ea_opts.generations = 80;
  const ea::Nsga2Result approx = ea::nsga2(spec, ea_opts);
  std::cout << "nsga2 front: " << approx.front.size() << " points ("
            << approx.evaluations << " evaluations, "
            << util::fmt(approx.seconds, 2) << "s)\n\n";

  util::Table table({"latency", "energy", "cost", "found by"});
  for (const auto& p : exact.front) {
    const bool also_ea =
        std::find(approx.front.begin(), approx.front.end(), p) !=
        approx.front.end();
    table.add_row({util::fmt(p[0]), util::fmt(p[1]), util::fmt(p[2]),
                   also_ea ? "both" : "exact only"});
  }
  table.print(std::cout);

  pareto::Vec ref(3, 0);
  for (const auto& p : exact.front) {
    for (int o = 0; o < 3; ++o) ref[o] = std::max(ref[o], p[o] + 1);
  }
  for (const auto& p : approx.front) {
    for (int o = 0; o < 3; ++o) ref[o] = std::max(ref[o], p[o] + 1);
  }
  std::cout << "\nhypervolume: exact="
            << util::fmt(pareto::hypervolume(exact.front, ref), 1)
            << " nsga2=" << util::fmt(pareto::hypervolume(approx.front, ref), 1)
            << "\ncoverage of the exact front by nsga2: "
            << util::fmt(100.0 * pareto::coverage_ratio(approx.front, exact.front), 1)
            << "%\n";
  return 0;
}
