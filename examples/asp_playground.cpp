// The ASP substrate as a stand-alone component: parse a ground program in
// the textual format, solve it with the CDNL engine (completion +
// unfounded-set checking), and enumerate its answer sets.
//
// Useful for poking at encodings without the synthesis layer on top.
#include <iostream>

#include "asp/completion.hpp"
#include "asp/solver.hpp"
#include "asp/grounder.hpp"
#include "asp/textio.hpp"
#include "asp/unfounded.hpp"
#include "theory/asp_minimize.hpp"

int main() {
  using namespace aspmt::asp;

  // Part 1: the non-ground front-end — 3-colouring of a triangle written
  // with variables, grounded by the built-in "gringo-lite".
  const char* text = R"(
    node(1..3).
    col(red). col(green). col(blue).
    edge(1,2). edge(2,3). edge(1,3).

    {colour(X,C)} :- node(X), col(C).
    has(X) :- colour(X,C).
    :- node(X), not has(X).
    :- colour(X,C1), colour(X,C2), C1 != C2.
    :- edge(X,Y), colour(X,C), colour(Y,C).
  )";

  GroundStats gstats;
  Program program = ground_text(text, &gstats);
  std::cout << "grounded: " << gstats.ground_atoms << " atoms, "
            << gstats.ground_rules << " rules in " << gstats.iterations
            << " fixpoint rounds\n\n";

  Solver solver;
  const CompiledProgram compiled = compile(program, solver);
  UnfoundedSetChecker checker(compiled);
  solver.add_propagator(&checker);
  std::cout << "completion: tight=" << (compiled.tight ? "yes" : "no")
            << ", vars=" << solver.num_vars()
            << ", clauses=" << solver.num_problem_clauses() << "\n\n";

  int count = 0;
  while (solver.solve() == Solver::Result::Sat) {
    ++count;
    std::cout << "answer set " << count << ": ";
    std::vector<Lit> blocking;
    for (Atom a = 0; a < program.num_atoms(); ++a) {
      const bool value = solver.model_value(compiled.atom_var[a]);
      if (value && program.name(a).rfind("colour(", 0) == 0) {
        std::cout << program.name(a) << " ";
      }
      blocking.push_back(Lit::make(compiled.atom_var[a], !value));
    }
    std::cout << "\n";
    if (!solver.add_clause(std::move(blocking))) break;
  }
  std::cout << "\n" << count << " answer sets (3-colourings of a triangle: "
            << "expected 6)\n";
  if (count != 6) return 1;

  // Part 2: weight rules and optimization — a tiny knapsack-style program
  // in the textual format, solved with branch-and-bound #minimize.
  const char* knapsack = R"(
    {take(gold)}. {take(silver)}. {take(bronze)}.
    % capacity: total weight (3,2,1) must not reach 5
    over :- 5 {3: take(gold); 2: take(silver); 1: take(bronze)}.
    :- over.
    % demand at least two items
    picked2 :- 2 {take(gold); take(silver); take(bronze)}.
    :- not picked2.
    % minimize forgone value (values 9, 5, 2)
    #minimize {9: not take(gold); 5: not take(silver); 2: not take(bronze)}.
  )";
  Program knap = parse_program(knapsack);
  Solver opt_solver;
  const CompiledProgram knap_compiled = compile(knap, opt_solver);
  UnfoundedSetChecker knap_checker(knap_compiled);
  aspmt::theory::LinearSumPropagator linear;
  const auto sum = aspmt::theory::install_minimize(knap, knap_compiled, linear);
  opt_solver.add_propagator(&linear);
  opt_solver.add_propagator(&knap_checker);
  const aspmt::theory::OptimalModel best =
      aspmt::theory::minimize_answer_set(opt_solver, linear, sum);
  std::cout << "\nknapsack: feasible=" << best.feasible
            << " proven=" << best.proven << " forgone value=" << best.cost
            << "\n  take:";
  for (Atom a = 0; a < knap.num_atoms(); ++a) {
    if (knap.name(a).rfind("take", 0) == 0 &&
        best.model[knap_compiled.atom_var[a]] == Lbool::True) {
      std::cout << " " << knap.name(a);
    }
  }
  std::cout << "\n";
  // gold(3)+bronze(1)=4 fits, forgoes silver (5); gold+silver = 5 is over.
  // silver+bronze = 3 forgoes gold (9). Optimum: gold+bronze, cost 5.
  return (best.proven && best.cost == 5) ? 0 : 1;
}
