// Quickstart: build a specification by hand, compute its exact Pareto
// front, and print the witnesses.
//
//   $ ./quickstart
//
// Two heterogeneous processors share a bus; a producer task feeds a
// consumer.  The exact front exposes the latency/energy/cost trade-off
// between the fast-expensive and the slow-frugal processor.
#include <iostream>

#include "dse/explorer.hpp"
#include "synth/spec.hpp"
#include "synth/validator.hpp"

int main() {
  using namespace aspmt;
  using namespace aspmt::synth;

  // 1. Architecture: two processors, one bus, bidirectional links.
  Specification spec;
  const ResourceId bus = spec.add_resource("bus", ResourceKind::Bus, 1);
  const ResourceId fast = spec.add_resource("fast_cpu", ResourceKind::Processor, 12);
  const ResourceId frugal = spec.add_resource("frugal_cpu", ResourceKind::Processor, 5);
  for (const ResourceId p : {fast, frugal}) {
    spec.add_link(p, bus, /*hop_delay=*/1, /*hop_energy=*/1);
    spec.add_link(bus, p, 1, 1);
  }

  // 2. Application: producer -> consumer with a 2-unit message.
  const TaskId producer = spec.add_task("producer");
  const TaskId consumer = spec.add_task("consumer");
  spec.add_message("data", producer, consumer, /*payload=*/2);

  // 3. Mapping options: WCET and energy per (task, processor) pair.
  spec.add_mapping(producer, fast, /*wcet=*/3, /*energy=*/6);
  spec.add_mapping(producer, frugal, 6, 2);
  spec.add_mapping(consumer, fast, 2, 5);
  spec.add_mapping(consumer, frugal, 5, 2);

  // 4. Exact multi-objective DSE.
  const dse::ExploreResult result = dse::explore(spec);
  std::cout << "exact Pareto front (" << result.front.size() << " points, "
            << (result.stats.complete ? "proven complete" : "incomplete")
            << "):\n\n";
  for (std::size_t i = 0; i < result.front.size(); ++i) {
    std::cout << "point " << i + 1 << " "
              << pareto::to_string(result.front[i]) << "  [latency, energy, cost]\n"
              << result.witnesses[i].describe(spec) << "\n";
    // Every witness is independently re-checkable:
    const std::string verdict = validate_implementation(spec, result.witnesses[i]);
    if (!verdict.empty()) {
      std::cerr << "validator rejected a witness: " << verdict << "\n";
      return 1;
    }
  }
  // 5. Schedules can be rendered as Gantt charts.
  std::cout << "schedule of the fastest implementation:\n"
            << result.witnesses.front().describe_schedule(spec) << "\n";
  std::cout << "explored with " << result.stats.models << " models, "
            << result.stats.prunings << " dominance prunings, "
            << result.stats.conflicts << " conflicts\n";
  return 0;
}
