// Automotive E/E scenario: a sensor-fusion control chain mapped onto a
// two-bus ECU network — the kind of workload the system-synthesis papers
// motivate with.
//
// Topology: three ECUs on a body CAN bus, two high-performance ECUs on a
// backbone bus, one gateway connecting the buses.  The application is a
// brake-by-wire-style chain: two sensors -> fusion -> control -> actuator,
// plus a diagnostics tap.
//
// Shows: exact front computation, per-objective optima via the
// branch-and-bound optimizer, and picking a "knee" implementation.
#include <algorithm>
#include <iostream>

#include "dse/context.hpp"
#include "dse/explorer.hpp"
#include "dse/optimizer.hpp"
#include "synth/spec.hpp"
#include "util/table.hpp"

int main() {
  using namespace aspmt;
  using namespace aspmt::synth;

  Specification spec;
  // Buses and gateway.
  const ResourceId can = spec.add_resource("can_bus", ResourceKind::Bus, 2);
  const ResourceId backbone = spec.add_resource("backbone", ResourceKind::Bus, 4);
  const ResourceId gw = spec.add_resource("gateway", ResourceKind::Router, 6);
  spec.add_link(gw, can, 2, 1);
  spec.add_link(can, gw, 2, 1);
  spec.add_link(gw, backbone, 1, 1);
  spec.add_link(backbone, gw, 1, 1);
  // Body ECUs (cheap, slow) on CAN.
  ResourceId body[3];
  for (int i = 0; i < 3; ++i) {
    body[i] = spec.add_resource("body_ecu" + std::to_string(i),
                                ResourceKind::Processor, 4 + i);
    spec.add_link(body[i], can, 2, 1);
    spec.add_link(can, body[i], 2, 1);
  }
  // Performance ECUs on the backbone.
  ResourceId perf[2];
  for (int i = 0; i < 2; ++i) {
    perf[i] = spec.add_resource("perf_ecu" + std::to_string(i),
                                ResourceKind::Processor, 14 + 4 * i);
    spec.add_link(perf[i], backbone, 1, 1);
    spec.add_link(backbone, perf[i], 1, 1);
  }

  // Application chain.
  const TaskId wheel = spec.add_task("wheel_sensor");
  const TaskId inertial = spec.add_task("inertial_sensor");
  const TaskId fusion = spec.add_task("fusion");
  const TaskId control = spec.add_task("control");
  const TaskId actuator = spec.add_task("actuator");
  const TaskId diag = spec.add_task("diagnostics");
  spec.add_message("wheel_data", wheel, fusion, 2);
  spec.add_message("imu_data", inertial, fusion, 2);
  spec.add_message("state", fusion, control, 1);
  spec.add_message("cmd", control, actuator, 1);
  spec.add_message("trace", fusion, diag, 3);

  // Sensors and the actuator live on body ECUs; compute tasks may go
  // anywhere, at very different operating points.
  spec.add_mapping(wheel, body[0], 2, 1);
  spec.add_mapping(wheel, body[1], 2, 1);
  spec.add_mapping(inertial, body[1], 2, 1);
  spec.add_mapping(inertial, body[2], 2, 1);
  spec.add_mapping(actuator, body[0], 2, 1);
  spec.add_mapping(actuator, body[2], 2, 1);
  for (const TaskId t : {fusion, control}) {
    spec.add_mapping(t, body[1], 9, 3);    // slow and frugal
    spec.add_mapping(t, perf[0], 3, 7);    // fast and hungry
    spec.add_mapping(t, perf[1], 2, 10);   // fastest, hungriest
  }
  spec.add_mapping(diag, body[2], 4, 2);
  spec.add_mapping(diag, perf[0], 2, 5);

  if (const std::string err = spec.validate(); !err.empty()) {
    std::cerr << "broken spec: " << err << "\n";
    return 1;
  }

  // Exact front.
  const dse::ExploreResult result = dse::explore(spec);
  std::cout << "automotive E/E network: exact Pareto front ("
            << result.front.size() << " points, "
            << (result.stats.complete ? "complete" : "incomplete") << ", "
            << util::fmt(result.stats.seconds, 2) << "s)\n\n";
  util::Table table({"#", "latency", "energy", "cost"});
  for (std::size_t i = 0; i < result.front.size(); ++i) {
    table.add_row({util::fmt(static_cast<long long>(i + 1)),
                   util::fmt(result.front[i][0]), util::fmt(result.front[i][1]),
                   util::fmt(result.front[i][2])});
  }
  table.print(std::cout);

  // Per-objective optima via branch-and-bound (cross-checks the front).
  std::cout << "\nper-objective optima via branch-and-bound:\n";
  for (std::size_t o = 0; o < 3; ++o) {
    dse::SynthContext ctx(spec);
    std::vector<asp::Lit> assumptions;
    const dse::MinimizeResult mr =
        dse::minimize_objective(ctx, o, assumptions, nullptr);
    std::cout << "  min " << ctx.objectives.name(o) << " = " << mr.best
              << (mr.proven ? " (proven)" : " (unproven)") << "\n";
  }

  // A simple knee heuristic: smallest normalized L1 distance to the ideal.
  pareto::Vec ideal = result.front.front();
  pareto::Vec nadir = result.front.front();
  for (const auto& p : result.front) {
    for (int o = 0; o < 3; ++o) {
      ideal[o] = std::min(ideal[o], p[o]);
      nadir[o] = std::max(nadir[o], p[o]);
    }
  }
  std::size_t knee = 0;
  double best_score = 1e18;
  for (std::size_t i = 0; i < result.front.size(); ++i) {
    double score = 0;
    for (int o = 0; o < 3; ++o) {
      const double span = std::max<double>(1.0, static_cast<double>(nadir[o] - ideal[o]));
      score += static_cast<double>(result.front[i][o] - ideal[o]) / span;
    }
    if (score < best_score) {
      best_score = score;
      knee = i;
    }
  }
  std::cout << "\nknee implementation " << pareto::to_string(result.front[knee])
            << ":\n"
            << result.witnesses[knee].describe(spec);
  return 0;
}
